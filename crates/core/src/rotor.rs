//! The rotor-coordinator (Algorithm 2, Section VI).
//!
//! Classic synchronous Byzantine agreement algorithms rotate through `f + 1`
//! coordinators so that at least one of them is correct. With consecutive identifiers
//! and a known `f` that is trivial; in the id-only model it is the central obstacle,
//! because nodes neither agree on the candidate set nor know how many candidates are
//! enough. Algorithm 2 solves it by growing a *candidate set* `C_v` in reliable-
//! broadcast fashion (so candidate sets of correct nodes never diverge for more than a
//! round) and selecting `C_v[r mod |C_v|]` in loop round `r`; a node stops as soon as
//! it would select the same coordinator twice. The paper proves (Theorem 2) that every
//! correct node terminates within `O(n)` rounds and that before terminating it
//! witnesses a *good round* — a round in which every correct node selected the same,
//! correct, coordinator — whose opinion every correct node accepts in the next round.
//!
//! The module exposes two layers:
//!
//! * [`RotorState`] — the reusable core (candidate tracking, selection, termination),
//!   consumed by the consensus algorithms which interleave one rotor round per phase;
//! * [`RotorCoordinator`] — a standalone [`Protocol`] running one rotor round per
//!   network round, used directly by the leader-election example and experiment E3.

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

use crate::membership::SenderTracker;
use crate::quorum::{meets_one_third, meets_two_thirds};
use crate::value::Opinion;

/// Wire messages of the rotor-coordinator.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RotorMessage<V> {
    /// Round-1 announcement of willingness to act as a coordinator.
    Init,
    /// "I support `candidate` as a coordinator candidate" (reliable-broadcast echo).
    Echo(NodeId),
    /// The opinion the current coordinator distributes.
    Opinion(V),
}

/// What happened in one rotor loop round at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorRecord<V> {
    /// The loop-round counter `r` (starting at 0).
    pub loop_round: u64,
    /// The coordinator selected this loop round (`C_v[r mod |C_v|]`).
    pub coordinator: NodeId,
    /// The opinion accepted from the *previous* loop round's coordinator, if any
    /// arrived.
    pub accepted_opinion: Option<V>,
}

/// The embeddable core of Algorithm 2.
///
/// The caller is responsible for driving rounds and delivering, for each loop round,
/// the tally of `echo(p)` votes and the opinions received. This indirection is what
/// lets the consensus algorithm (Algorithm 3) run one rotor round per five-round phase
/// while the standalone [`RotorCoordinator`] runs one per network round.
#[derive(Clone, Debug, Default)]
pub struct RotorState<V: Opinion> {
    /// `C_v`: the ordered candidate set.
    candidates: BTreeSet<NodeId>,
    /// `S_v`: the coordinators selected so far, in selection order.
    selected: Vec<NodeId>,
    /// Loop-round counter `r`.
    loop_round: u64,
    /// Coordinator selected in the previous loop round (`p'`).
    previous_coordinator: Option<NodeId>,
    /// Whether the node re-selected a coordinator and stopped.
    terminated: bool,
    /// Per-loop-round records for analysis and tests.
    history: Vec<RotorRecord<V>>,
}

impl<V: Opinion> RotorState<V> {
    /// Creates an empty rotor state (before the init/echo rounds).
    pub fn new() -> Self {
        RotorState {
            candidates: BTreeSet::new(),
            selected: Vec::new(),
            loop_round: 0,
            previous_coordinator: None,
            terminated: false,
            history: Vec::new(),
        }
    }

    /// The ordered candidate set `C_v`.
    pub fn candidates(&self) -> &BTreeSet<NodeId> {
        &self.candidates
    }

    /// The selected coordinators `S_v`, in selection order.
    pub fn selected(&self) -> &[NodeId] {
        &self.selected
    }

    /// Whether the rotor has terminated (re-selected a coordinator).
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// Per-loop-round records.
    pub fn history(&self) -> &[RotorRecord<V>] {
        &self.history
    }

    /// The coordinator selected in the most recent loop round, if any.
    pub fn current_coordinator(&self) -> Option<NodeId> {
        self.history.last().map(|r| r.coordinator)
    }

    /// Executes one loop round of Algorithm 2 (lines 6–29).
    ///
    /// * `my_id` / `my_opinion` — the executing node and the opinion it would
    ///   distribute if selected as coordinator;
    /// * `n_v` — the node's current count of distinct senders;
    /// * `echo_votes` — for each candidate `p`, the distinct nodes from which an
    ///   `echo(p)` was received since the previous loop round;
    /// * `opinions` — the opinions received since the previous loop round, keyed by
    ///   true sender.
    ///
    /// Returns the rotor messages to broadcast this round (`B_v`). After termination
    /// the state ignores further calls and returns nothing.
    pub fn loop_round(
        &mut self,
        my_id: NodeId,
        my_opinion: &V,
        n_v: usize,
        echo_votes: &BTreeMap<NodeId, BTreeSet<NodeId>>,
        opinions: &BTreeMap<NodeId, V>,
    ) -> Vec<RotorMessage<V>> {
        if self.terminated {
            return Vec::new();
        }
        let mut broadcast = Vec::new();

        // Lines 8–11: support candidates that reached the n_v/3 threshold and are not
        // yet in C_v.
        for (&candidate, voters) in echo_votes {
            if meets_one_third(voters.len(), n_v) && !self.candidates.contains(&candidate) {
                broadcast.push(RotorMessage::Echo(candidate));
            }
        }
        // Lines 12–15: admit candidates that reached the 2n_v/3 threshold into C_v.
        for (&candidate, voters) in echo_votes {
            if meets_two_thirds(voters.len(), n_v) {
                self.candidates.insert(candidate);
            }
        }

        // Line 16: select the next coordinator. C_v can only be empty if the node has
        // heard from nobody, in which case there is nothing to select yet.
        let Some(coordinator) = self
            .candidates
            .iter()
            .copied()
            .nth((self.loop_round % self.candidates.len().max(1) as u64) as usize)
        else {
            self.loop_round += 1;
            return broadcast;
        };

        // Lines 17–20: accept the opinion of the previous round's coordinator.
        let accepted_opinion = self
            .previous_coordinator
            .and_then(|p_prev| opinions.get(&p_prev).cloned());

        self.history.push(RotorRecord {
            loop_round: self.loop_round,
            coordinator,
            accepted_opinion,
        });

        // Lines 21–23: terminate upon re-selecting a coordinator; nothing is broadcast
        // in the terminating round.
        if self.selected.contains(&coordinator) {
            self.terminated = true;
            return Vec::new();
        }

        // Line 24: remember the selection.
        self.selected.push(coordinator);

        // Lines 25–28: if this node is the coordinator, distribute its opinion.
        if coordinator == my_id {
            broadcast.push(RotorMessage::Opinion(my_opinion.clone()));
        }

        self.previous_coordinator = Some(coordinator);
        self.loop_round += 1;
        broadcast
    }
}

/// Tally helper shared by the standalone protocol and the consensus embedding:
/// extracts `echo(p)` votes and opinions from an inbox of rotor messages.
pub fn tally_rotor_inbox<V: Opinion>(
    inbox: &[Envelope<RotorMessage<V>>],
) -> (BTreeMap<NodeId, BTreeSet<NodeId>>, BTreeMap<NodeId, V>) {
    let mut echo_votes: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    let mut opinions: BTreeMap<NodeId, V> = BTreeMap::new();
    for envelope in inbox {
        match envelope.payload() {
            RotorMessage::Echo(candidate) => {
                echo_votes
                    .entry(*candidate)
                    .or_default()
                    .insert(envelope.from);
            }
            RotorMessage::Opinion(value) => {
                opinions.insert(envelope.from, value.clone());
            }
            RotorMessage::Init => {}
        }
    }
    (echo_votes, opinions)
}

/// The output of a completed standalone rotor run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorOutcome<V> {
    /// The coordinators this node selected, in order (the paper's `S_v`).
    pub selected: Vec<NodeId>,
    /// Per-loop-round records, including accepted coordinator opinions.
    pub records: Vec<RotorRecord<V>>,
    /// Rounds (network rounds) executed before termination.
    pub rounds: u64,
}

/// A standalone node running Algorithm 2, one loop round per network round.
#[derive(Clone, Debug)]
pub struct RotorCoordinator<V: Opinion> {
    id: NodeId,
    opinion: V,
    senders: SenderTracker,
    state: RotorState<V>,
    rounds: u64,
}

impl<V: Opinion> RotorCoordinator<V> {
    /// Creates a rotor node with the opinion it would distribute when selected.
    pub fn new(id: NodeId, opinion: V) -> Self {
        RotorCoordinator {
            id,
            opinion,
            senders: SenderTracker::new(),
            state: RotorState::new(),
            rounds: 0,
        }
    }

    /// Access to the underlying rotor state (candidate set, selections, history).
    pub fn state(&self) -> &RotorState<V> {
        &self.state
    }

    /// The node's current `n_v`.
    pub fn n_v(&self) -> usize {
        self.senders.n_v()
    }
}

impl<V: Opinion> Recoverable for RotorCoordinator<V> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<V: Opinion> Protocol for RotorCoordinator<V> {
    type Payload = RotorMessage<V>;
    type Output = RotorOutcome<V>;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<RotorMessage<V>>],
    ) -> Vec<Outgoing<RotorMessage<V>>> {
        self.rounds = ctx.round;
        self.senders.record_inbox(inbox);
        match ctx.round {
            // Round 1 (line 3): announce willingness to coordinate.
            1 => vec![Outgoing::broadcast(RotorMessage::Init)],
            // Round 2 (line 4): echo every init received.
            2 => inbox
                .iter()
                .filter(|e| e.payload == RotorMessage::Init)
                .map(|e| Outgoing::broadcast(RotorMessage::Echo(e.from)))
                .collect(),
            // Rounds 3… (lines 5–30): the selection loop.
            _ => {
                let (echo_votes, opinions) = tally_rotor_inbox(inbox);
                let n_v = self.senders.n_v();
                self.state
                    .loop_round(self.id, &self.opinion, n_v, &echo_votes, &opinions)
                    .into_iter()
                    .map(Outgoing::broadcast)
                    .collect()
            }
        }
    }

    fn output(&self) -> Option<RotorOutcome<V>> {
        self.state.terminated().then(|| RotorOutcome {
            selected: self.state.selected().to_vec(),
            records: self.state.history().to_vec(),
            rounds: self.rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    fn run_rotor(
        n_correct: usize,
        byzantine: usize,
        seed: u64,
    ) -> SyncEngine<RotorCoordinator<u64>, impl uba_simnet::Adversary<RotorMessage<u64>>> {
        let ids = IdSpace::default().generate(n_correct + byzantine, seed);
        let byz: Vec<NodeId> = ids[n_correct..].to_vec();
        let nodes: Vec<_> = ids[..n_correct]
            .iter()
            .map(|&id| RotorCoordinator::new(id, id.raw()))
            .collect();
        let byz_clone = byz.clone();
        // Byzantine nodes announce themselves and echo arbitrary candidates towards a
        // subset of the correct nodes, attempting to poison the candidate sets.
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, RotorMessage<u64>>| {
            let mut out = Vec::new();
            for (i, &from) in byz_clone.iter().enumerate() {
                for (j, &to) in view.correct_ids.iter().enumerate() {
                    if view.round == 1 {
                        out.push(Directed::new(from, to, RotorMessage::Init));
                    } else if (i + j) % 2 == 0 {
                        out.push(Directed::new(from, to, RotorMessage::Echo(byz_clone[i])));
                    }
                }
            }
            out
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine
            .run_to_termination(10 * (n_correct + byzantine) as u64 + 20)
            .expect("rotor terminates in O(n) rounds");
        engine
    }

    #[test]
    fn all_correct_nodes_terminate_without_faults() {
        let ids = IdSpace::default().generate(6, 11);
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| RotorCoordinator::new(id, id.raw()))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_termination(100).unwrap();
        // With no faults every node selects every correct node exactly once before
        // cycling, so |S_v| = 6 everywhere and the selections are identical.
        let outcomes: Vec<RotorOutcome<u64>> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        for outcome in &outcomes {
            assert_eq!(outcome.selected, outcomes[0].selected);
            assert_eq!(outcome.selected.len(), 6);
        }
    }

    #[test]
    fn termination_is_linear_in_n() {
        for &n in &[4usize, 8, 16] {
            let ids = IdSpace::default().generate(n, 17);
            let nodes: Vec<_> = ids
                .iter()
                .map(|&id| RotorCoordinator::new(id, 0u64))
                .collect();
            let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
            let rounds = engine.run_to_termination(10 * n as u64 + 20).unwrap();
            assert!(
                rounds <= n as u64 + 4,
                "rotor with {n} fault-free nodes should finish within n + 4 rounds, took {rounds}"
            );
        }
    }

    #[test]
    fn good_round_exists_under_byzantine_candidates() {
        let engine = run_rotor(7, 2, 23);
        let correct_ids: BTreeSet<NodeId> = engine.correct_ids().into_iter().collect();
        // Find a loop round where every correct node selected the same correct node.
        let histories: Vec<&RotorState<u64>> = engine.nodes().iter().map(|n| n.state()).collect();
        let max_loop = histories.iter().map(|h| h.history().len()).min().unwrap();
        let mut good_round_found = false;
        for r in 0..max_loop {
            let selections: BTreeSet<NodeId> = histories
                .iter()
                .map(|h| h.history()[r].coordinator)
                .collect();
            if selections.len() == 1 && correct_ids.contains(selections.iter().next().unwrap()) {
                good_round_found = true;
                break;
            }
        }
        assert!(
            good_round_found,
            "every correct node must witness a good round"
        );
    }

    #[test]
    fn opinion_of_common_correct_coordinator_is_accepted() {
        // With no Byzantine nodes, in every loop round after the first the previous
        // coordinator's opinion (its id) must have been accepted by everyone.
        let ids = IdSpace::default().generate(5, 31);
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| RotorCoordinator::new(id, id.raw()))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_termination(100).unwrap();
        for node in engine.nodes() {
            let history = node.state().history();
            for pair in history.windows(2) {
                let expected = pair[0].coordinator.raw();
                assert_eq!(
                    pair[1].accepted_opinion,
                    Some(expected),
                    "the opinion accepted in loop round {} must come from the previous coordinator",
                    pair[1].loop_round
                );
            }
        }
    }

    #[test]
    fn candidate_sets_of_correct_nodes_agree_at_termination() {
        let engine = run_rotor(10, 3, 41);
        let candidate_sets: Vec<BTreeSet<NodeId>> = engine
            .nodes()
            .iter()
            .map(|n| n.state().candidates().clone())
            .collect();
        // All correct ids are in every candidate set (correctness of the underlying
        // reliable-broadcast style dissemination).
        let correct: BTreeSet<NodeId> = engine.correct_ids().into_iter().collect();
        for set in &candidate_sets {
            assert!(correct.is_subset(set));
        }
    }

    #[test]
    fn rotor_state_ignores_calls_after_termination() {
        let mut state: RotorState<u64> = RotorState::new();
        let me = NodeId::new(1);
        let mut votes: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        votes.insert(
            me,
            [NodeId::new(1), NodeId::new(2), NodeId::new(3)]
                .into_iter()
                .collect(),
        );
        let opinions = BTreeMap::new();
        // n_v = 3: three votes meet the 2/3 threshold, so `me` joins C_v and is selected.
        state.loop_round(me, &0, 3, &votes, &opinions);
        assert_eq!(state.selected(), &[me]);
        // Selecting again terminates.
        state.loop_round(me, &0, 3, &BTreeMap::new(), &opinions);
        assert!(state.terminated());
        let after = state.loop_round(me, &0, 3, &votes, &opinions);
        assert!(after.is_empty());
        assert_eq!(state.history().len(), 2);
    }

    #[test]
    fn empty_candidate_set_selects_nothing() {
        let mut state: RotorState<u64> = RotorState::new();
        let out = state.loop_round(NodeId::new(1), &0, 0, &BTreeMap::new(), &BTreeMap::new());
        assert!(out.is_empty());
        assert!(state.history().is_empty());
        assert!(!state.terminated());
    }
}
