//! Reliable broadcast in the id-only model (Algorithm 1, Section V).
//!
//! Reliable broadcast forces a (possibly Byzantine) designated sender `s` to be
//! consistent: whatever it sends, all correct nodes see the *same* thing. The paper
//! generalises Srikanth–Toueg's authenticated-broadcast simulation to the setting
//! where nobody knows `n` or `f`, replacing the `f + 1` and `2f + 1` thresholds with
//! `n_v/3` and `2n_v/3`, where `n_v` is the number of distinct nodes that have sent
//! `v` at least one message so far.
//!
//! Properties (all proved for `n > 3f` in the paper, and checked empirically by the
//! E1 experiment and the test-suite here):
//!
//! * **Correctness** — if `s` is correct, every correct node accepts `(m, s)`;
//! * **Unforgeability** — if a correct node accepts `(m, s)` and `s` is correct,
//!   then `s` really broadcast `(m, s)`;
//! * **Relay** — if a correct node accepts `(m, s)` in round `r`, every correct node
//!   accepts it by round `r + 1`.
//!
//! The primitive deliberately never terminates (the accepting loop runs forever); the
//! algorithms that embed it implement their own termination. The driver therefore
//! uses [`SyncEngine::run_until_all_output`](uba_simnet::SyncEngine) or a fixed round
//! budget.

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

use crate::membership::SenderTracker;
use crate::quorum::{meets_one_third, meets_two_thirds};

/// Deliberate-bug switches for the property-fuzz mutation check.
///
/// The fuzz harness (`uba-bench::fuzz`) must itself be tested: a harness that never
/// fires is indistinguishable from a correct protocol. These process-global,
/// default-off toggles let the mutation-check test inject a known protocol bug at
/// runtime and assert the fuzzer detects it and shrinks the counterexample. They
/// exist **only** for that test; nothing in the repository sets them outside
/// `tests/fuzz_mutation.rs`.
#[doc(hidden)]
pub mod mutation {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// When set, every node skips the round-2 echo of the designated sender's
    /// `Init` — echoes then never reach the `2n_v/3` acceptance threshold, which
    /// breaks Theorem 1's correctness property for every correct sender.
    pub static SKIP_ECHO_ROUND: AtomicBool = AtomicBool::new(false);

    /// Whether the echo-skipping mutation is active.
    pub fn skip_echo_round() -> bool {
        SKIP_ECHO_ROUND.load(Ordering::Relaxed)
    }

    /// Enables or disables the echo-skipping mutation.
    pub fn set_skip_echo_round(enabled: bool) {
        SKIP_ECHO_ROUND.store(enabled, Ordering::Relaxed);
    }
}

/// Wire messages of the reliable-broadcast protocol.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RbMessage<M> {
    /// Round-1 message of every non-sender node; it only serves to make the node
    /// known to everyone so that `n_v` reflects the true membership.
    Present,
    /// The designated sender's round-1 broadcast of its message `m`.
    Init(M),
    /// "I have witnessed the sender broadcasting `m`" — the echo that drives the
    /// two-threshold acceptance rule.
    Echo(M),
}

/// The acceptance produced by the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Accepted<M> {
    /// The accepted message.
    pub message: M,
    /// The designated sender it is attributed to.
    pub source: NodeId,
    /// The round in which this node accepted.
    pub round: u64,
}

/// A node running Algorithm 1 for one designated sender `s`.
///
/// Construct the designated sender itself with [`ReliableBroadcast::sender`] and every
/// other node with [`ReliableBroadcast::receiver`].
#[derive(Clone, Debug)]
pub struct ReliableBroadcast<M> {
    id: NodeId,
    source: NodeId,
    /// The message to broadcast; `Some` only on the designated sender.
    input: Option<M>,
    senders: SenderTracker,
    /// Messages already accepted (at most one per distinct `m` in practice).
    accepted: Vec<Accepted<M>>,
    /// Values already echoed at least once (used only to satisfy the "not accepted
    /// already" guard efficiently; re-echoing is governed by the per-round counts).
    round: u64,
}

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> ReliableBroadcast<M> {
    /// Creates the designated sender node, which will broadcast `message` in round 1.
    pub fn sender(id: NodeId, message: M) -> Self {
        ReliableBroadcast {
            id,
            source: id,
            input: Some(message),
            senders: SenderTracker::new(),
            accepted: Vec::new(),
            round: 0,
        }
    }

    /// Creates a receiver node that waits for the designated sender `source`.
    pub fn receiver(id: NodeId, source: NodeId) -> Self {
        ReliableBroadcast {
            id,
            source,
            input: None,
            senders: SenderTracker::new(),
            accepted: Vec::new(),
            round: 0,
        }
    }

    /// The designated sender this instance listens to.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The messages accepted so far (with the round in which each was accepted).
    pub fn accepted(&self) -> &[Accepted<M>] {
        &self.accepted
    }

    /// The current value of `n_v` as seen by this node.
    pub fn n_v(&self) -> usize {
        self.senders.n_v()
    }

    fn already_accepted(&self, message: &M) -> bool {
        self.accepted.iter().any(|a| &a.message == message)
    }

    /// Tallies this round's `echo(m)` votes: distinct senders per message value.
    fn echo_tally(&self, inbox: &[Envelope<RbMessage<M>>]) -> BTreeMap<M, BTreeSet<NodeId>> {
        let mut tally: BTreeMap<M, BTreeSet<NodeId>> = BTreeMap::new();
        for envelope in inbox {
            if let RbMessage::Echo(m) = envelope.payload() {
                tally.entry(m.clone()).or_default().insert(envelope.from);
            }
        }
        tally
    }
}

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> Recoverable for ReliableBroadcast<M> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> Protocol for ReliableBroadcast<M> {
    type Payload = RbMessage<M>;
    type Output = Accepted<M>;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<RbMessage<M>>],
    ) -> Vec<Outgoing<RbMessage<M>>> {
        self.round = ctx.round;
        self.senders.record_inbox(inbox);

        match ctx.round {
            // Round 1: the designated sender broadcasts its message; everyone else
            // announces its presence so that n_v counts the full membership.
            1 => {
                if let Some(message) = &self.input {
                    vec![Outgoing::broadcast(RbMessage::Init(message.clone()))]
                } else {
                    vec![Outgoing::broadcast(RbMessage::Present)]
                }
            }
            // Round 2: echo the sender's message if (and only if) it arrived from the
            // designated sender itself — the network-attached sender id makes this
            // unforgeable.
            2 => {
                if mutation::skip_echo_round() {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for envelope in inbox {
                    if envelope.from == self.source {
                        if let RbMessage::Init(m) = envelope.payload() {
                            out.push(Outgoing::broadcast(RbMessage::Echo(m.clone())));
                        }
                    }
                }
                out
            }
            // Rounds 3…: the amplification loop of Algorithm 1.
            _ => {
                let n_v = self.senders.n_v();
                let tally = self.echo_tally(inbox);
                let mut out = Vec::new();
                for (message, voters) in tally {
                    let votes = voters.len();
                    // Line 11–14: support the echo once n_v/3 distinct nodes vouch for it.
                    if meets_one_third(votes, n_v) && !self.already_accepted(&message) {
                        out.push(Outgoing::broadcast(RbMessage::Echo(message.clone())));
                    }
                    // Line 15–18: accept once 2n_v/3 distinct nodes vouch for it.
                    if meets_two_thirds(votes, n_v) && !self.already_accepted(&message) {
                        self.accepted.push(Accepted {
                            message,
                            source: self.source,
                            round: ctx.round,
                        });
                    }
                }
                out
            }
        }
    }

    fn output(&self) -> Option<Accepted<M>> {
        self.accepted.first().cloned()
    }

    /// Reliable broadcast never terminates on its own (the paper leaves termination to
    /// the embedding algorithm), so the engine must be driven with an explicit round
    /// budget or an output-based stop condition.
    fn terminated(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{Adversary, AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    type Msg = RbMessage<u64>;

    fn build_nodes(n: usize, seed: u64) -> (Vec<ReliableBroadcast<u64>>, Vec<NodeId>) {
        let ids = IdSpace::default().generate(n, seed);
        let source = ids[0];
        let nodes = ids
            .iter()
            .map(|&id| {
                if id == source {
                    ReliableBroadcast::sender(id, 4242)
                } else {
                    ReliableBroadcast::receiver(id, source)
                }
            })
            .collect();
        (nodes, ids)
    }

    #[test]
    fn correct_sender_is_accepted_by_everyone_in_three_rounds() {
        let (nodes, _) = build_nodes(7, 1);
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_output(10).unwrap();
        for node in engine.nodes() {
            let accepted = node.accepted();
            assert_eq!(accepted.len(), 1);
            assert_eq!(accepted[0].message, 4242);
            assert_eq!(
                accepted[0].round, 3,
                "acceptance happens in the third round"
            );
        }
    }

    #[test]
    fn silent_byzantine_sender_is_never_accepted() {
        // The designated sender is Byzantine and never sends anything.
        let ids = IdSpace::default().generate(5, 2);
        let source = ids[4];
        let nodes: Vec<_> = ids[..4]
            .iter()
            .map(|&id| ReliableBroadcast::<u64>::receiver(id, source))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![source]);
        engine.run_rounds(20).unwrap();
        for node in engine.nodes() {
            assert!(node.accepted().is_empty());
        }
    }

    #[test]
    fn equivocating_sender_yields_identical_accept_sets_everywhere() {
        // Byzantine designated sender sends value 1 to half the nodes and value 2 to
        // the other half. Reliable broadcast does not forbid accepting both values —
        // what it guarantees is consistency: every correct node ends up accepting the
        // exact same set of (message, sender) pairs, so the equivocation is exposed
        // identically to everyone.
        let ids = IdSpace::default().generate(7, 3);
        let source = ids[6];
        let correct: Vec<NodeId> = ids[..6].to_vec();
        let nodes: Vec<_> = correct
            .iter()
            .map(|&id| ReliableBroadcast::<u64>::receiver(id, source))
            .collect();
        let correct_clone = correct.clone();
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
            if view.round != 1 {
                return vec![];
            }
            correct_clone
                .iter()
                .enumerate()
                .map(|(i, &to)| {
                    let value = if i % 2 == 0 { 1 } else { 2 };
                    Directed::new(source, to, RbMessage::Init(value))
                })
                .collect()
        });
        let mut engine = SyncEngine::new(nodes, adversary, vec![source]);
        engine.run_rounds(20).unwrap();
        let accept_sets: Vec<BTreeSet<u64>> = engine
            .nodes()
            .iter()
            .map(|node| node.accepted().iter().map(|a| a.message).collect())
            .collect();
        for set in &accept_sets {
            assert_eq!(
                set, &accept_sets[0],
                "all correct nodes must accept exactly the same set of values"
            );
        }
    }

    #[test]
    fn byzantine_echoes_cannot_forge_acceptance() {
        // Unforgeability: the designated sender is correct but never broadcasts the
        // forged value; f Byzantine nodes echo a forged value and it must not be
        // accepted. n = 7, f = 2.
        let ids = IdSpace::default().generate(7, 4);
        let byz: Vec<NodeId> = ids[5..].to_vec();
        let source = ids[0];
        let nodes: Vec<_> = ids[..5]
            .iter()
            .map(|&id| {
                if id == source {
                    ReliableBroadcast::sender(id, 7)
                } else {
                    ReliableBroadcast::receiver(id, source)
                }
            })
            .collect();
        let byz_clone = byz.clone();
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
            let mut out = Vec::new();
            for &from in &byz_clone {
                for &to in view.correct_ids {
                    out.push(Directed::new(from, to, RbMessage::Echo(666)));
                }
            }
            out
        });
        let mut engine = SyncEngine::new(nodes, adversary, vec![byz[0], byz[1]]);
        engine.run_rounds(20).unwrap();
        for node in engine.nodes() {
            assert!(node.accepted().iter().all(|a| a.message == 7));
            assert_eq!(
                node.accepted().len(),
                1,
                "the genuine value is still accepted"
            );
        }
    }

    #[test]
    fn relay_property_holds_under_partial_byzantine_support() {
        // The Byzantine nodes echo the genuine value only to a subset of nodes, trying
        // to make one node accept much earlier than the others. Relay guarantees the
        // gap between the first and the last acceptance round is at most one.
        let ids = IdSpace::default().generate(10, 5);
        let byz: Vec<NodeId> = ids[7..].to_vec();
        let source = ids[0];
        let correct: Vec<NodeId> = ids[..7].to_vec();
        let nodes: Vec<_> = correct
            .iter()
            .map(|&id| {
                if id == source {
                    ReliableBroadcast::sender(id, 99)
                } else {
                    ReliableBroadcast::receiver(id, source)
                }
            })
            .collect();
        let byz_clone = byz.clone();
        let favoured = correct[1];
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
            // Echo the genuine value, but only towards one favoured node.
            if view.round < 2 {
                return vec![];
            }
            byz_clone
                .iter()
                .map(|&from| Directed::new(from, favoured, RbMessage::Echo(99)))
                .collect()
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz.clone());
        engine.run_rounds(20).unwrap();
        let rounds: Vec<u64> = engine
            .nodes()
            .iter()
            .map(|n| {
                n.accepted()
                    .first()
                    .expect("all correct nodes accept")
                    .round
            })
            .collect();
        let min = *rounds.iter().min().unwrap();
        let max = *rounds.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "relay: acceptance rounds {rounds:?} differ by more than 1"
        );
    }

    #[test]
    fn n_v_counts_distinct_senders_only() {
        let (nodes, ids) = build_nodes(4, 6);
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_rounds(3).unwrap();
        for node in engine.nodes() {
            assert_eq!(node.n_v(), ids.len());
        }
    }

    #[test]
    fn adversary_trait_objects_compose_with_rb_payloads() {
        // Regression guard: the generic adversary helpers stay usable with RbMessage.
        let mut silent = SilentAdversary;
        let traffic = uba_simnet::RoundTraffic::new();
        let view = AdversaryView::<Msg> {
            round: 1,
            correct_ids: &[],
            byzantine_ids: &[],
            correct_traffic: &traffic,
        };
        assert!(Adversary::<Msg>::step(&mut silent, &view).is_empty());
    }
}
