//! Total ordering of events in a dynamic network (Algorithm 6, Section XI).
//!
//! The most useful agreement task in a network whose membership keeps changing is not
//! a one-shot decision but an ever-growing, totally ordered log of events — the
//! abstraction a permissionless ledger provides. Algorithm 6 builds it by running one
//! [`ParallelConsensus`] instance *per round*: each node that witnesses an event
//! broadcasts it tagged with its current round number, everybody collects the
//! `(witness, event)` pairs of the previous round as the input pairs of that round's
//! instance, and the decided pairs of old-enough ("final") instances are appended to
//! the log in round order (ties broken by witness identifier).
//!
//! Dynamic membership is handled with three plain messages: a joiner broadcasts
//! `present`, existing members answer `(ack, r)` so the joiner can adopt the correct
//! round number (by majority) and learn the member set `S`, and a leaver broadcasts
//! `absent`. The adversary may add nodes before any round as long as `n > 3f` keeps
//! holding — the guarantee the whole construction rests on.
//!
//! The two properties proved in Theorem 6 and checked by the tests and experiment E9:
//!
//! * **Chain-prefix** — the logs of any two correct nodes are prefixes of one another;
//! * **Chain-growth** — the log keeps growing as long as correct nodes keep
//!   submitting events.

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

use crate::early_consensus::ParallelMessage;
use crate::parallel_consensus::ParallelConsensus;
use crate::value::Opinion;

/// Wire messages of the total-ordering protocol.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TotalOrderMessage<E> {
    /// A joining node announcing itself.
    Present,
    /// `(ack, r)`: an existing member telling a joiner the current round number.
    Ack(u64),
    /// A leaving node announcing its departure.
    Absent,
    /// An event witnessed by the sender in the tagged round.
    Event(u64, E),
    /// A message belonging to the parallel-consensus instance of the tagged round.
    Instance(u64, ParallelMessage<E>),
}

/// One entry of the totally ordered log.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderedEvent<E> {
    /// The round whose consensus instance ordered the event.
    pub round: u64,
    /// The node that witnessed and submitted the event.
    pub witness: NodeId,
    /// The event itself.
    pub event: E,
}

/// Checks the agreement between finalised logs, restricted to the rounds the logs
/// have in common.
///
/// A node that joined late cannot know events finalised before it joined (the paper's
/// join protocol transfers no history), so its log starts later; likewise two nodes
/// may have finalised up to different rounds. The chain-prefix property therefore
/// amounts to: for every pair of logs, the entries for the rounds covered by both are
/// identical. Returns `true` when that holds for every pair.
pub fn chains_agree<E: Opinion>(chains: &[Vec<OrderedEvent<E>>]) -> bool {
    for a in chains {
        for b in chains {
            let (Some(a_first), Some(b_first)) = (a.first(), b.first()) else {
                continue;
            };
            let (Some(a_last), Some(b_last)) = (a.last(), b.last()) else {
                continue;
            };
            let lo = a_first.round.max(b_first.round);
            let hi = a_last.round.min(b_last.round);
            let a_window: Vec<&OrderedEvent<E>> = a
                .iter()
                .filter(|e| e.round >= lo && e.round <= hi)
                .collect();
            let b_window: Vec<&OrderedEvent<E>> = b
                .iter()
                .filter(|e| e.round >= lo && e.round <= hi)
                .collect();
            if a_window != b_window {
                return false;
            }
        }
    }
    true
}

/// A per-round consensus instance together with the membership snapshot it runs
/// against ("running a parallel consensus instance with respect to `S`").
#[derive(Clone, Debug)]
struct RoundInstance<E: Opinion> {
    consensus: ParallelConsensus<E>,
    /// The member set recorded when the instance started.
    members: BTreeSet<NodeId>,
    /// Local round counter of the embedded instance.
    local_round: u64,
    /// Decided pairs (witness raw id → event), filled once the instance terminates.
    decided: Option<BTreeMap<u64, E>>,
}

/// A node running Algorithm 6.
#[derive(Clone, Debug)]
pub struct TotalOrderNode<E: Opinion> {
    id: NodeId,
    /// Whether the node has completed the join handshake.
    joined: bool,
    /// Local step counter used only while joining (to know when the acks are in).
    local_steps: u64,
    /// The node's current round number `r` (meaningful once joined).
    round: u64,
    /// The current member set `S`.
    members: BTreeSet<NodeId>,
    /// Events submitted by the application, waiting to be broadcast (one per round).
    pending_events: Vec<E>,
    /// Whether the node has announced (or wants to announce) that it is leaving.
    leaving: bool,
    announced_leave: bool,
    /// Whether the node has already broadcast `present` (founders do it in their first
    /// round so that every founder learns the initial membership; joiners do it as
    /// part of the join handshake).
    announced_presence: bool,
    /// Per-round consensus instances, keyed by the round that created them.
    instances: BTreeMap<u64, RoundInstance<E>>,
    /// The finalised log.
    chain: Vec<OrderedEvent<E>>,
    /// Largest round up to which every round is final and appended to the chain.
    finalized_upto: u64,
    /// The first round this node participated in (instances before it do not exist).
    first_round: u64,
}

impl<E: Opinion> TotalOrderNode<E> {
    /// Creates a founding member: it is part of the system from round 0 and needs no
    /// join handshake.
    pub fn founding(id: NodeId) -> Self {
        TotalOrderNode {
            id,
            joined: true,
            local_steps: 0,
            round: 0,
            members: BTreeSet::from([id]),
            pending_events: Vec::new(),
            leaving: false,
            announced_leave: false,
            announced_presence: false,
            instances: BTreeMap::new(),
            chain: Vec::new(),
            finalized_upto: 0,
            first_round: 1,
        }
    }

    /// Creates a node that wants to join a running system: it broadcasts `present`,
    /// adopts the majority round number from the acks and only then participates.
    pub fn joining(id: NodeId) -> Self {
        TotalOrderNode {
            id,
            joined: false,
            local_steps: 0,
            round: 0,
            members: BTreeSet::from([id]),
            pending_events: Vec::new(),
            leaving: false,
            announced_leave: false,
            announced_presence: true,
            instances: BTreeMap::new(),
            chain: Vec::new(),
            finalized_upto: 0,
            first_round: 0,
        }
    }

    /// Submits an event to be ordered; it is broadcast in the node's next round.
    pub fn submit_event(&mut self, event: E) {
        self.pending_events.push(event);
    }

    /// Announces that the node wants to leave. It broadcasts `absent` in its next
    /// round and keeps participating in outstanding instances until the driver
    /// removes it.
    pub fn announce_leave(&mut self) {
        self.leaving = true;
    }

    /// Whether the node has completed the join handshake.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// The node's current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's current member set `S`.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// The finalised, totally ordered log.
    pub fn chain(&self) -> &[OrderedEvent<E>] {
        &self.chain
    }

    /// The largest round up to which the log is final.
    pub fn finalized_upto(&self) -> u64 {
        self.finalized_upto
    }

    /// The finality rule of Algorithm 6 (line 28): round `r'` is final at round `r`
    /// if `r − r' > 5·|S_{r'}|/2 + 2`, evaluated in exact arithmetic.
    fn is_final(current_round: u64, instance_round: u64, members_at_start: usize) -> bool {
        let age = current_round.saturating_sub(instance_round);
        2 * age > 5 * members_at_start as u64 + 4
    }

    /// Advances finalisation and appends newly final rounds to the chain, in order.
    fn advance_finality(&mut self) {
        loop {
            let next = self.finalized_upto.max(self.first_round.saturating_sub(1)) + 1;
            if next >= self.round {
                break;
            }
            let Some(instance) = self.instances.get(&next) else {
                break;
            };
            if !Self::is_final(self.round, next, instance.members.len()) {
                break;
            }
            let Some(decided) = &instance.decided else {
                break;
            };
            for (witness_raw, event) in decided {
                self.chain.push(OrderedEvent {
                    round: next,
                    witness: NodeId::new(*witness_raw),
                    event: event.clone(),
                });
            }
            self.finalized_upto = next;
            // The instance is no longer needed; drop its state to bound memory.
            self.instances.remove(&next);
        }
    }
}

impl<E: Opinion + Send + Sync + 'static> Recoverable for TotalOrderNode<E> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<E: Opinion + Send + Sync + 'static> Protocol for TotalOrderNode<E> {
    type Payload = TotalOrderMessage<E>;
    type Output = Vec<OrderedEvent<E>>;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        _ctx: &RoundContext,
        inbox: &[Envelope<TotalOrderMessage<E>>],
    ) -> Vec<Outgoing<TotalOrderMessage<E>>> {
        self.local_steps += 1;
        let mut out: Vec<Outgoing<TotalOrderMessage<E>>> = Vec::new();

        // Join handshake (lines 1–6).
        if !self.joined {
            match self.local_steps {
                1 => return vec![Outgoing::broadcast(TotalOrderMessage::Present)],
                2 => return Vec::new(),
                _ => {
                    let mut acks: BTreeMap<u64, usize> = BTreeMap::new();
                    let mut senders: BTreeSet<NodeId> = BTreeSet::new();
                    for envelope in inbox {
                        if let TotalOrderMessage::Ack(r) = envelope.payload() {
                            *acks.entry(*r).or_default() += 1;
                            senders.insert(envelope.from);
                        }
                    }
                    let Some((&r0, _)) = acks.iter().max_by_key(|(_, count)| **count) else {
                        // No acks yet; keep waiting.
                        return Vec::new();
                    };
                    self.round = r0 + 1;
                    self.first_round = self.round + 1;
                    self.finalized_upto = self.round;
                    self.members = senders;
                    self.members.insert(self.id);
                    self.joined = true;
                    return Vec::new();
                }
            }
        }

        // Line 8: advance the round.
        self.round += 1;
        let r = self.round;

        // Founders make themselves known to each other in their first round, so that
        // the member set S reflects the initial membership.
        if !self.announced_presence {
            self.announced_presence = true;
            out.push(Outgoing::broadcast(TotalOrderMessage::Present));
        }

        // Lines 10–20: membership messages.
        let mut event_inputs: Vec<(u64, E)> = Vec::new();
        let mut instance_inbox: BTreeMap<u64, Vec<Envelope<ParallelMessage<E>>>> = BTreeMap::new();
        for envelope in inbox {
            match envelope.payload() {
                TotalOrderMessage::Present => {
                    self.members.insert(envelope.from);
                    out.push(Outgoing::unicast(envelope.from, TotalOrderMessage::Ack(r)));
                }
                TotalOrderMessage::Absent => {
                    self.members.remove(&envelope.from);
                }
                TotalOrderMessage::Ack(_) => {}
                // Line 24–26: events witnessed in the previous round become input pairs
                // of this round's instance, identified by the witnessing node.
                TotalOrderMessage::Event(tag, event) => {
                    if *tag + 1 == r {
                        event_inputs.push((envelope.from.raw(), event.clone()));
                    }
                }
                TotalOrderMessage::Instance(instance_round, _) => {
                    // Only instances that will actually be driven this round
                    // consume their inboxes: the one started this round (`r`)
                    // and the outstanding undecided ones. Traffic for decided
                    // or finalised-and-dropped instances used to be cloned
                    // here and then dropped unread; now it costs nothing. The
                    // payload itself is a borrowing projection out of the
                    // `Instance` variant — no clone of the inner message.
                    let live = *instance_round == r
                        || self
                            .instances
                            .get(instance_round)
                            .is_some_and(|instance| instance.decided.is_none());
                    if live {
                        let inner = envelope.payload.project(|payload| match payload {
                            TotalOrderMessage::Instance(_, message) => message,
                            _ => unreachable!("projecting a non-instance payload"),
                        });
                        instance_inbox
                            .entry(*instance_round)
                            .or_default()
                            .push(Envelope::new(envelope.from, inner));
                    }
                }
            }
        }

        // Lines 14–17: leaving.
        if self.leaving && !self.announced_leave {
            self.announced_leave = true;
            out.push(Outgoing::broadcast(TotalOrderMessage::Absent));
        }

        // Lines 21–23: broadcast one witnessed event, tagged with the current round.
        if !self.pending_events.is_empty() && !self.leaving {
            let event = self.pending_events.remove(0);
            out.push(Outgoing::broadcast(TotalOrderMessage::Event(r, event)));
        }

        // Line 27: start this round's parallel consensus instance with the collected
        // pairs, with respect to the current member set. Leaving nodes only finish
        // outstanding instances and do not start new ones.
        if !self.leaving {
            let consensus = ParallelConsensus::new(self.id, event_inputs);
            self.instances.insert(
                r,
                RoundInstance {
                    consensus,
                    members: self.members.clone(),
                    local_round: 0,
                    decided: None,
                },
            );
        }

        // Drive every outstanding instance by one (local) round.
        for (&instance_round, instance) in self.instances.iter_mut() {
            if instance.decided.is_some() {
                continue;
            }
            instance.local_round += 1;
            let inner_ctx = RoundContext::new(instance.local_round);
            let inbox: Vec<Envelope<ParallelMessage<E>>> = instance_inbox
                .remove(&instance_round)
                .unwrap_or_default()
                .into_iter()
                .filter(|e| instance.members.contains(&e.from))
                .collect();
            for message in instance.consensus.step(&inner_ctx, &inbox) {
                out.push(Outgoing {
                    dest: message.dest,
                    payload: TotalOrderMessage::Instance(instance_round, message.payload),
                });
            }
            if let Some(decision) = instance.consensus.decision() {
                instance.decided = Some(decision.pairs.clone());
            }
        }

        // Lines 28–30: finality and chain construction.
        self.advance_finality();

        out
    }

    fn output(&self) -> Option<Vec<OrderedEvent<E>>> {
        Some(self.chain.clone())
    }

    /// Total ordering never terminates; the driver decides how long to run.
    fn terminated(&self) -> bool {
        false
    }

    fn instance_of(&self, payload: &TotalOrderMessage<E>) -> Option<u64> {
        match payload {
            TotalOrderMessage::Instance(round, _) => Some(*round),
            // An event witnessed in round `t` is input to round `t + 1`'s
            // instance, so that is the instance whose retirement makes it dead.
            TotalOrderMessage::Event(round, _) => Some(round + 1),
            // Membership traffic is never instance-scoped.
            TotalOrderMessage::Present | TotalOrderMessage::Ack(_) | TotalOrderMessage::Absent => {
                None
            }
        }
    }

    fn retired_frontier(&self) -> u64 {
        // Every instance ≤ `finalized_upto` is decided, appended to the chain
        // and dropped from `instances`; the finality rule keeps the node's
        // round far past the window in which an event for such an instance
        // could still become an input (`tag + 1 == r`). So everything strictly
        // below `finalized_upto` can never be read or sent again — exactly the
        // frontier contract. (A fresh joiner reports its adopted base round,
        // which by the same argument it will never look behind.)
        self.finalized_upto
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{IdSpace, SyncEngine};

    type Node = TotalOrderNode<u64>;

    fn founders(n: usize, seed: u64) -> Vec<Node> {
        IdSpace::default()
            .generate(n, seed)
            .into_iter()
            .map(TotalOrderNode::founding)
            .collect()
    }

    fn assert_chain_prefix(chains: &[Vec<OrderedEvent<u64>>]) {
        for a in chains {
            for b in chains {
                let short = a.len().min(b.len());
                assert_eq!(&a[..short], &b[..short], "chain-prefix violated");
            }
        }
    }

    #[test]
    fn events_are_ordered_identically_at_all_nodes() {
        let mut engine = SyncEngine::new(founders(4, 1), SilentAdversary, vec![]);
        // Submit one event per node in each of the first 5 rounds, then run long
        // enough for those rounds to become final.
        for round in 0..5u64 {
            for (i, node) in engine.nodes_mut().iter_mut().enumerate() {
                node.submit_event(round * 100 + i as u64);
            }
            engine.run_rounds(1).unwrap();
        }
        engine.run_rounds(60).unwrap();
        let chains: Vec<Vec<OrderedEvent<u64>>> =
            engine.nodes().iter().map(|n| n.chain().to_vec()).collect();
        assert!(!chains[0].is_empty(), "events must eventually be finalised");
        assert_chain_prefix(&chains);
        // All submitted events that made it into the final prefix are unique.
        let shortest = chains.iter().map(|c| c.len()).min().unwrap();
        let events: BTreeSet<u64> = chains[0][..shortest].iter().map(|e| e.event).collect();
        assert_eq!(events.len(), shortest, "no event is ordered twice");
    }

    #[test]
    fn chain_growth_with_continuous_events() {
        let mut engine = SyncEngine::new(founders(4, 2), SilentAdversary, vec![]);
        let mut lengths = Vec::new();
        for round in 0..80u64 {
            {
                let node = &mut engine.nodes_mut()[0];
                node.submit_event(round);
            }
            engine.run_rounds(1).unwrap();
            lengths.push(engine.nodes()[0].chain().len());
        }
        assert!(
            lengths.last().unwrap() > &lengths[30],
            "the chain must keep growing while events keep being submitted"
        );
    }

    #[test]
    fn chains_agree_handles_offset_and_empty_logs() {
        let ev = |round: u64, witness: u64, event: u64| OrderedEvent {
            round,
            witness: NodeId::new(witness),
            event,
        };
        let full = vec![ev(1, 1, 10), ev(2, 2, 20), ev(3, 3, 30)];
        let suffix = vec![ev(2, 2, 20), ev(3, 3, 30)];
        let empty: Vec<OrderedEvent<u64>> = vec![];
        assert!(chains_agree(&[full.clone(), suffix.clone(), empty]));
        let conflicting = vec![ev(2, 2, 99)];
        assert!(!chains_agree(&[full, conflicting]));
    }

    #[test]
    fn finality_rule_matches_the_paper_formula() {
        // |S| = 4: final once r - r' > 12, i.e. age ≥ 13.
        assert!(!TotalOrderNode::<u64>::is_final(13, 1, 4));
        assert!(TotalOrderNode::<u64>::is_final(14, 1, 4));
        // |S| = 5: 5·5/2 + 2 = 14.5, so age ≥ 15.
        assert!(!TotalOrderNode::<u64>::is_final(15, 1, 5));
        assert!(TotalOrderNode::<u64>::is_final(16, 1, 5));
    }

    #[test]
    fn joining_node_adopts_round_and_membership() {
        let mut engine = SyncEngine::new(founders(4, 3), SilentAdversary, vec![]);
        engine.run_rounds(10).unwrap();
        let joiner_id = NodeId::new(999_983);
        engine.add_node(TotalOrderNode::joining(joiner_id)).unwrap();
        engine.run_rounds(6).unwrap();
        let joiner = engine.node(joiner_id).unwrap();
        assert!(joiner.is_joined());
        assert_eq!(
            joiner.members().len(),
            5,
            "the joiner learns every acking member plus itself"
        );
        // The joiner's round tracks the founders' round (they are one step ahead at
        // most, depending on when the acks were processed).
        let founder_round = engine.nodes()[0].round();
        assert!(founder_round.abs_diff(joiner.round()) <= 1);
        // Founders learned about the joiner.
        assert!(engine.nodes()[0].members().contains(&joiner_id));
    }

    #[test]
    fn leaving_node_is_removed_from_membership() {
        let mut engine = SyncEngine::new(founders(5, 4), SilentAdversary, vec![]);
        engine.run_rounds(5).unwrap();
        let leaver = engine.correct_ids()[4];
        engine
            .nodes_mut()
            .iter_mut()
            .find(|n| n.id() == leaver)
            .unwrap()
            .announce_leave();
        engine.run_rounds(3).unwrap();
        for node in engine.nodes() {
            if node.id() != leaver {
                assert!(
                    !node.members().contains(&leaver),
                    "absent node must be dropped from S"
                );
            }
        }
    }

    #[test]
    fn submitted_events_appear_in_the_final_chain() {
        let mut engine = SyncEngine::new(founders(4, 5), SilentAdversary, vec![]);
        engine.nodes_mut()[2].submit_event(777);
        engine.run_rounds(40).unwrap();
        let chain = engine.nodes()[0].chain();
        assert!(
            chain.iter().any(|e| e.event == 777),
            "an event submitted by a correct node must eventually be ordered: {chain:?}"
        );
        assert_chain_prefix(
            &engine
                .nodes()
                .iter()
                .map(|n| n.chain().to_vec())
                .collect::<Vec<_>>(),
        );
    }
}
