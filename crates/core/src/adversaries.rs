//! Protocol-aware Byzantine strategies.
//!
//! The generic adversary combinators (silent, crash, closure-driven) live in
//! `uba_simnet::adversary`; this module adds strategies that need to craft payloads of
//! the protocols implemented in this crate. They are the worst cases used in the
//! paper's proofs — equivocation, partial self-announcement, split votes, candidate
//! poisoning — and are what the experiment suite and the property-based tests throw at
//! the algorithms.

use std::hash::Hash;

use uba_simnet::{Adversary, AdversaryView, Directed, NodeId, Shared};

use crate::consensus::ConsensusMessage;
use crate::early_consensus::{InstanceId, ParallelMessage};
use crate::reliable_broadcast::RbMessage;
use crate::rotor::RotorMessage;
use crate::value::Opinion;

/// Payloads that have a round-1 "I exist" announcement. Implemented by every protocol
/// message type in this crate so that [`AnnounceThenSilent`] can be reused across
/// protocols.
pub trait Announce {
    /// The message a node broadcasts in round 1 to make itself known.
    fn announce() -> Self;
}

impl<M: Clone> Announce for RbMessage<M> {
    fn announce() -> Self {
        RbMessage::Present
    }
}

impl<V: Opinion> Announce for RotorMessage<V> {
    fn announce() -> Self {
        RotorMessage::Init
    }
}

impl<V: Opinion> Announce for ConsensusMessage<V> {
    fn announce() -> Self {
        ConsensusMessage::Init
    }
}

impl<V: Opinion> Announce for ParallelMessage<V> {
    fn announce() -> Self {
        ParallelMessage::Init
    }
}

/// Byzantine nodes that announce themselves in round 1 — so that every correct node
/// counts them towards `n_v` — and then never send another message.
///
/// This is the canonical stress test for the paper's `n_v/3` thresholds: the counted
/// but silent nodes inflate `n_v` without ever contributing votes, which is exactly
/// the situation the missing-message substitution rule exists for.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnnounceThenSilent;

impl<P: Announce + Hash> Adversary<P> for AnnounceThenSilent {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        if view.round != 1 {
            return Vec::new();
        }
        // One payload allocation for the whole fan-out; every injected message
        // forwards the handle.
        let announce = Shared::new(P::announce());
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for &to in view.correct_ids {
                out.push(Directed::new(from, to, announce.clone()));
            }
        }
        out
    }
}

/// Byzantine nodes that announce themselves to only *half* of the correct nodes,
/// making different correct nodes hold different values of `n_v` — the "a Byzantine
/// node may get itself known to only a subset of nodes" behaviour from the model.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartialAnnounce;

impl<P: Announce + Hash> Adversary<P> for PartialAnnounce {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        if view.round != 1 {
            return Vec::new();
        }
        let announce = Shared::new(P::announce());
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                if i % 2 == 0 {
                    out.push(Directed::new(from, to, announce.clone()));
                }
            }
        }
        out
    }
}

/// Byzantine nodes that announce themselves only to the correct nodes whose
/// construction index `i` satisfies `i % modulus == remainder` — the generalised
/// form of [`PartialAnnounce`] used by attack-plan behaviours
/// ([`AttackBehavior::AnnounceToSubset`](uba_simnet::AttackBehavior)): sweeping the
/// modulus explores how uneven the per-node `n_v` counts can be made.
#[derive(Clone, Copy, Debug)]
pub struct AnnounceToSubset {
    modulus: u64,
    remainder: u64,
}

impl AnnounceToSubset {
    /// Creates the adversary; a modulus below 2 degrades to announcing to everyone.
    pub fn new(modulus: u64, remainder: u64) -> Self {
        let modulus = modulus.max(1);
        AnnounceToSubset {
            modulus,
            remainder: remainder % modulus,
        }
    }
}

impl<P: Announce + Hash> Adversary<P> for AnnounceToSubset {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        if view.round != 1 {
            return Vec::new();
        }
        let announce = Shared::new(P::announce());
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                if i as u64 % self.modulus == self.remainder {
                    out.push(Directed::new(from, to, announce.clone()));
                }
            }
        }
        out
    }
}

/// A Byzantine *designated sender* for reliable broadcast that sends a different
/// message to each half of the correct nodes in round 1 (equivocation). Reliable
/// broadcast must either expose both values to everyone or accept neither — what it
/// must never allow is two correct nodes accepting different, *conflicting* views.
#[derive(Clone, Debug)]
pub struct EquivocatingSource<M> {
    source: NodeId,
    value_for_evens: M,
    value_for_odds: M,
}

impl<M> EquivocatingSource<M> {
    /// Creates the adversary; `source` must be registered as a Byzantine identity.
    pub fn new(source: NodeId, value_for_evens: M, value_for_odds: M) -> Self {
        EquivocatingSource {
            source,
            value_for_evens,
            value_for_odds,
        }
    }
}

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> Adversary<RbMessage<M>>
    for EquivocatingSource<M>
{
    fn step(&mut self, view: &AdversaryView<'_, RbMessage<M>>) -> Vec<Directed<RbMessage<M>>> {
        // Only speak when the source identity is in the view's Byzantine set: an
        // attack-plan step whose actor range excludes the source must silence it,
        // not keep sending from an identity the step does not drive.
        if view.round != 1 || !view.byzantine_ids.contains(&self.source) {
            return Vec::new();
        }
        // Exactly two fabricated payloads — the tamper cost of equivocation —
        // shared across however many recipients each half has.
        let for_evens = Shared::new(RbMessage::Init(self.value_for_evens.clone()));
        let for_odds = Shared::new(RbMessage::Init(self.value_for_odds.clone()));
        view.correct_ids
            .iter()
            .enumerate()
            .map(|(i, &to)| {
                let payload = if i % 2 == 0 { &for_evens } else { &for_odds };
                Directed::new(self.source, to, payload.clone())
            })
            .collect()
    }
}

/// Byzantine nodes that try to split a consensus execution: they participate in the
/// initialisation and then, in every voting round, tell half of the correct nodes they
/// support `low` and the other half that they support `high`, mirroring whichever
/// message kind is expected in that round.
#[derive(Clone, Debug)]
pub struct SplitVote<V> {
    low: V,
    high: V,
}

impl<V> SplitVote<V> {
    /// Creates a split-vote adversary pushing the two given values.
    pub fn new(low: V, high: V) -> Self {
        SplitVote { low, high }
    }
}

impl<V: Opinion> Adversary<ConsensusMessage<V>> for SplitVote<V> {
    fn step(
        &mut self,
        view: &AdversaryView<'_, ConsensusMessage<V>>,
    ) -> Vec<Directed<ConsensusMessage<V>>> {
        // The attack fabricates at most two distinct values per voting round (the
        // equivocation pair) — so at most two payload allocations per round, plus
        // one `Echo(from)` per identity in round 2, shared across all recipients.
        let split_pair = |make: fn(V) -> ConsensusMessage<V>| {
            Some((
                Shared::new(make(self.low.clone())),
                Shared::new(make(self.high.clone())),
            ))
        };
        let pair = match view.round {
            r if r >= 3 && (r - 3) % 5 == 0 => split_pair(ConsensusMessage::Input),
            r if r >= 3 && (r - 3) % 5 == 1 => split_pair(ConsensusMessage::Prefer),
            r if r >= 3 && (r - 3) % 5 == 2 => split_pair(ConsensusMessage::StrongPrefer),
            r if r >= 3 && (r - 3) % 5 == 3 => split_pair(ConsensusMessage::Opinion),
            _ => None,
        };
        let init = (view.round == 1).then(|| Shared::new(ConsensusMessage::Init));
        let mut out = Vec::new();
        for (b, &from) in view.byzantine_ids.iter().enumerate() {
            let echo = (view.round == 2).then(|| Shared::new(ConsensusMessage::Echo(from)));
            for (i, &to) in view.correct_ids.iter().enumerate() {
                let payload = match (&init, &echo, &pair) {
                    (Some(init), _, _) => init.clone(),
                    (_, Some(echo), _) => echo.clone(),
                    (_, _, Some((low, high))) => {
                        if (i + b) % 2 == 0 {
                            low.clone()
                        } else {
                            high.clone()
                        }
                    }
                    _ => break,
                };
                out.push(Directed::new(from, to, payload));
            }
        }
        out
    }
}

/// Byzantine nodes that try to poison the rotor-coordinator's candidate set by
/// echoing never-announced, non-existent identifiers, and that echo genuine candidates
/// only towards a subset of nodes to desynchronise the candidate sets.
#[derive(Clone, Debug)]
pub struct CandidatePoisoner {
    /// Fabricated identifiers the adversary vouches for.
    pub fabricated: Vec<NodeId>,
}

impl CandidatePoisoner {
    /// Creates a poisoner pushing the given fabricated identifiers.
    pub fn new(fabricated: Vec<NodeId>) -> Self {
        CandidatePoisoner { fabricated }
    }
}

impl<V: Opinion> Adversary<RotorMessage<V>> for CandidatePoisoner {
    fn step(
        &mut self,
        view: &AdversaryView<'_, RotorMessage<V>>,
    ) -> Vec<Directed<RotorMessage<V>>> {
        // One allocation per distinct fabricated payload per round (the Init
        // announcement or one ghost echo per fabricated identifier).
        let init = (view.round == 1).then(|| Shared::new(RotorMessage::<V>::Init));
        let ghosts: Vec<Shared<RotorMessage<V>>> = if view.round == 1 {
            Vec::new()
        } else {
            self.fabricated
                .iter()
                .map(|&ghost| Shared::new(RotorMessage::Echo(ghost)))
                .collect()
        };
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                if let Some(init) = &init {
                    out.push(Directed::new(from, to, init.clone()));
                } else {
                    for (j, echo) in ghosts.iter().enumerate() {
                        if (i + j) % 2 == 0 {
                            out.push(Directed::new(from, to, echo.clone()));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Byzantine nodes that flood parallel consensus with input pairs for identifiers no
/// correct node has, trying to bloat the instance set or sneak a fabricated pair into
/// the output.
#[derive(Clone, Debug)]
pub struct GhostPairInjector<V> {
    /// The fabricated `(identifier, opinion)` pairs to push.
    pub pairs: Vec<(InstanceId, V)>,
}

impl<V> GhostPairInjector<V> {
    /// Creates an injector pushing the given fabricated pairs.
    pub fn new(pairs: Vec<(InstanceId, V)>) -> Self {
        GhostPairInjector { pairs }
    }
}

impl<V: Opinion> Adversary<ParallelMessage<V>> for GhostPairInjector<V> {
    fn step(
        &mut self,
        view: &AdversaryView<'_, ParallelMessage<V>>,
    ) -> Vec<Directed<ParallelMessage<V>>> {
        // Phase-1 rounds in which the correct nodes evaluate inputs, prefers and
        // strong-prefers respectively. One allocation per fabricated pair per
        // round, shared across the (byzantine × correct) fan-out.
        let payloads: Vec<Shared<ParallelMessage<V>>> = match view.round {
            1 => vec![Shared::new(ParallelMessage::Init)],
            4 => self
                .pairs
                .iter()
                .map(|(id, value)| Shared::new(ParallelMessage::Input(*id, value.clone())))
                .collect(),
            5 => self
                .pairs
                .iter()
                .map(|(id, value)| Shared::new(ParallelMessage::Prefer(*id, Some(value.clone()))))
                .collect(),
            6 => self
                .pairs
                .iter()
                .map(|(id, value)| {
                    Shared::new(ParallelMessage::StrongPrefer(*id, Some(value.clone())))
                })
                .collect(),
            _ => Vec::new(),
        };
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for &to in view.correct_ids {
                for payload in &payloads {
                    out.push(Directed::new(from, to, payload.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::RoundTraffic;

    static CORRECT: [NodeId; 4] = [
        NodeId::new(2),
        NodeId::new(4),
        NodeId::new(5),
        NodeId::new(7),
    ];
    static BYZ: [NodeId; 2] = [NodeId::new(100), NodeId::new(101)];

    fn view<P>(round: u64, traffic: &RoundTraffic<P>) -> AdversaryView<'_, P> {
        AdversaryView {
            round,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
            correct_traffic: traffic,
        }
    }

    #[test]
    fn announce_then_silent_only_speaks_in_round_one() {
        let mut adv = AnnounceThenSilent;
        let t: RoundTraffic<ConsensusMessage<u64>> = RoundTraffic::new();
        assert_eq!(Adversary::step(&mut adv, &view(1, &t)).len(), 8);
        assert!(Adversary::<ConsensusMessage<u64>>::step(&mut adv, &view(2, &t)).is_empty());
    }

    #[test]
    fn partial_announce_covers_half_the_nodes() {
        let mut adv = PartialAnnounce;
        let t: RoundTraffic<RbMessage<u64>> = RoundTraffic::new();
        let out = Adversary::step(&mut adv, &view(1, &t));
        assert_eq!(out.len(), 4, "2 byzantine × 2 (even-indexed) recipients");
    }

    #[test]
    fn announce_to_subset_generalises_partial_announce() {
        let t: RoundTraffic<RbMessage<u64>> = RoundTraffic::new();
        // modulus 2, remainder 0 is exactly PartialAnnounce.
        let mut halves = AnnounceToSubset::new(2, 0);
        let halved = Adversary::step(&mut halves, &view(1, &t));
        let mut partial = PartialAnnounce;
        assert_eq!(halved, Adversary::step(&mut partial, &view(1, &t)));
        // modulus 4 picks exactly one of the four correct nodes per remainder.
        let mut quarter = AnnounceToSubset::new(4, 3);
        let out = Adversary::step(&mut quarter, &view(1, &t));
        assert_eq!(out.len(), 2, "2 byzantine × 1 recipient");
        assert!(out.iter().all(|m| m.to == CORRECT[3]));
        // Nothing after round 1; degenerate modulus announces to everyone.
        assert!(Adversary::<RbMessage<u64>>::step(&mut quarter, &view(2, &t)).is_empty());
        let mut all = AnnounceToSubset::new(0, 5);
        assert_eq!(Adversary::step(&mut all, &view(1, &t)).len(), 8);
    }

    #[test]
    fn equivocating_source_sends_two_values() {
        let mut adv = EquivocatingSource::new(BYZ[0], 1u64, 2u64);
        let t: RoundTraffic<RbMessage<u64>> = RoundTraffic::new();
        let out = adv.step(&view(1, &t));
        assert_eq!(out.len(), 4);
        let ones = out
            .iter()
            .filter(|m| m.payload == RbMessage::Init(1))
            .count();
        let twos = out
            .iter()
            .filter(|m| m.payload == RbMessage::Init(2))
            .count();
        assert_eq!((ones, twos), (2, 2));
        assert!(adv.step(&view(2, &t)).is_empty());
    }

    #[test]
    fn equivocating_source_respects_a_restricted_actor_view() {
        // An attack-plan step whose actor range excludes the source identity must
        // silence it — the strategy may only drive identities in its view.
        let mut adv = EquivocatingSource::new(BYZ[0], 1u64, 2u64);
        let t: RoundTraffic<RbMessage<u64>> = RoundTraffic::new();
        let mut restricted = view(1, &t);
        restricted.byzantine_ids = &BYZ[1..];
        assert!(adv.step(&restricted).is_empty());
        assert_eq!(adv.step(&view(1, &t)).len(), 4, "full view still attacks");
    }

    #[test]
    fn split_vote_tracks_the_phase_schedule() {
        let mut adv = SplitVote::new(0u64, 1u64);
        let t: RoundTraffic<ConsensusMessage<u64>> = RoundTraffic::new();
        let round3 = adv.step(&view(3, &t));
        assert!(round3
            .iter()
            .all(|m| matches!(m.payload(), ConsensusMessage::Input(_))));
        let round4 = adv.step(&view(4, &t));
        assert!(round4
            .iter()
            .all(|m| matches!(m.payload(), ConsensusMessage::Prefer(_))));
        let round7 = adv.step(&view(7, &t));
        assert!(round7.is_empty(), "nothing to say in the resolve round");
    }

    #[test]
    fn candidate_poisoner_vouches_for_ghosts() {
        let mut adv = CandidatePoisoner::new(vec![NodeId::new(999)]);
        let t: RoundTraffic<RotorMessage<u64>> = RoundTraffic::new();
        let out = adv.step(&view(3, &t));
        assert!(out
            .iter()
            .all(|m| m.payload == RotorMessage::Echo(NodeId::new(999))));
        assert!(!out.is_empty());
    }

    #[test]
    fn ghost_pair_injector_targets_phase_one_rounds() {
        let mut adv = GhostPairInjector::new(vec![(77, 7u64)]);
        let t: RoundTraffic<ParallelMessage<u64>> = RoundTraffic::new();
        assert!(adv
            .step(&view(4, &t))
            .iter()
            .all(|m| matches!(m.payload(), ParallelMessage::Input(77, 7))));
        assert!(adv
            .step(&view(6, &t))
            .iter()
            .all(|m| matches!(m.payload(), ParallelMessage::StrongPrefer(77, Some(7)))));
        assert!(adv.step(&view(8, &t)).is_empty());
    }
}
