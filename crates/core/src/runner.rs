//! Deprecated one-call experiment drivers, kept for one release as shims.
//!
//! This module used to hand-wire a bespoke `run_*` function per scenario shape.
//! That plumbing now lives behind the unified [`Simulation`](crate::sim::Simulation)
//! builder (see [`crate::sim`]): a scenario is described once and pointed at any
//! protocol through its [`ProtocolFactory`](crate::sim::ProtocolFactory). The
//! functions here translate the old signatures onto the new driver and will be
//! removed in a future release — new code should use the builder directly:
//!
//! ```
//! use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
//!
//! let report = Simulation::scenario()
//!     .correct(7)
//!     .byzantine(2)
//!     .seed(42)
//!     .adversary(AdversaryKind::SplitVote)
//!     .consensus(&[0, 1, 0, 1, 0, 1, 0])
//!     .run()
//!     .unwrap();
//! assert!(report.consensus.unwrap().agreement);
//! ```

#![allow(deprecated)]

use uba_simnet::{IdSpace, NodeId, SimError};

use crate::sim::{ScenarioBuilder, ScenarioExt, Simulation};

/// Adversary strategies selectable by name in experiment sweeps.
///
/// Now a re-export of [`crate::sim::AdversaryKind`] (which gained a `Worst` kind);
/// the four original variants are unchanged.
pub use crate::sim::AdversaryKind;

/// Description of a system to simulate.
#[deprecated(note = "use uba_core::sim::Simulation::scenario() instead")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Number of correct nodes.
    pub correct: usize,
    /// Number of Byzantine identities handed to the adversary.
    pub byzantine: usize,
    /// Identifier-generation strategy.
    pub id_space: IdSpace,
    /// Seed for identifier generation and any adversary randomness.
    pub seed: u64,
    /// Hard cap on rounds before the run is declared stuck.
    pub max_rounds: u64,
}

impl Scenario {
    /// A scenario with `correct` correct and `byzantine` Byzantine nodes, default
    /// sparse identifiers and a generous round budget.
    pub fn new(correct: usize, byzantine: usize, seed: u64) -> Self {
        Scenario {
            correct,
            byzantine,
            id_space: IdSpace::default(),
            seed,
            max_rounds: 1_000,
        }
    }

    /// Total number of nodes `n`.
    pub fn n(&self) -> usize {
        self.correct + self.byzantine
    }

    /// Whether the scenario satisfies the optimal resiliency `n > 3f`.
    pub fn resilient(&self) -> bool {
        crate::quorum::resilient(self.n(), self.byzantine)
    }

    /// Generates the identifiers: the first `correct` are correct nodes, the rest are
    /// handed to the adversary.
    pub fn ids(&self) -> (Vec<NodeId>, Vec<NodeId>) {
        let ids = self.id_space.generate(self.n(), self.seed);
        let (c, b) = ids.split_at(self.correct);
        (c.to_vec(), b.to_vec())
    }

    /// The equivalent [`ScenarioBuilder`] under the new driver API.
    pub fn builder(&self) -> ScenarioBuilder {
        Simulation::scenario()
            .correct(self.correct)
            .byzantine(self.byzantine)
            .ids(self.id_space)
            .seed(self.seed)
            .max_rounds(self.max_rounds)
    }
}

/// Everything measured in one consensus run.
#[deprecated(note = "use the RunReport produced by the Simulation builder instead")]
#[derive(Clone, Debug, PartialEq)]
pub struct ConsensusReport {
    /// The decided value of every correct node, in construction order.
    pub decisions: Vec<u64>,
    /// Rounds until the last correct node decided.
    pub rounds: u64,
    /// Total point-to-point messages sent by correct nodes.
    pub messages: u64,
    /// Whether every correct node decided the same value.
    pub agreement: bool,
    /// Whether the decided value was the input of some correct node.
    pub validity: bool,
}

/// Runs binary consensus with the given inputs under the selected adversary.
#[deprecated(note = "use Simulation::scenario()...consensus(inputs).run() instead")]
pub fn run_consensus(
    scenario: &Scenario,
    inputs: &[u64],
    adversary: AdversaryKind,
) -> Result<ConsensusReport, SimError> {
    assert_eq!(inputs.len(), scenario.correct, "one input per correct node");
    let report = scenario
        .builder()
        .adversary(adversary)
        .consensus(inputs)
        .run()?;
    // The old driver treated cap exhaustion as an error.
    let rounds = match report.status {
        crate::sim::RunStatus::Completed { rounds } => rounds,
        crate::sim::RunStatus::MaxRoundsExceeded { limit } => {
            return Err(SimError::MaxRoundsExceeded { limit })
        }
    };
    let section = report
        .consensus
        .expect("the consensus factory fills its section");
    Ok(ConsensusReport {
        decisions: section.decisions.iter().map(|d| d.value).collect(),
        rounds,
        messages: report.messages.correct,
        agreement: section.agreement,
        validity: section.validity,
    })
}

/// Everything measured in one reliable-broadcast run.
#[deprecated(note = "use the RunReport produced by the Simulation builder instead")]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastReport {
    /// For every correct node: the set of values it accepted.
    pub accepted: Vec<Vec<u64>>,
    /// Rounds executed.
    pub rounds: u64,
    /// Total point-to-point messages sent by correct nodes.
    pub messages: u64,
    /// Whether all correct nodes accepted exactly the same set of values.
    pub consistent: bool,
}

fn broadcast_report(report: crate::sim::RunReport) -> BroadcastReport {
    let section = report
        .broadcast
        .expect("the broadcast factory fills its section");
    BroadcastReport {
        accepted: section
            .accepted
            .iter()
            .map(|set| set.values.iter().map(|&(message, _)| message).collect())
            .collect(),
        rounds: report.rounds,
        messages: report.messages.correct,
        consistent: section.consistent,
    }
}

/// Runs reliable broadcast with a **correct** designated sender broadcasting `value`.
#[deprecated(note = "use Simulation::scenario()...broadcast(value).rounds(r).run() instead")]
pub fn run_broadcast_correct_source(
    scenario: &Scenario,
    value: u64,
    rounds: u64,
) -> Result<BroadcastReport, SimError> {
    // The old driver ran exactly `rounds` rounds regardless of the scenario's round
    // cap; widen the cap so the fixed-round stop condition is always reachable.
    let report = scenario
        .builder()
        .max_rounds(scenario.max_rounds.max(rounds))
        .adversary(AdversaryKind::AnnounceThenSilent)
        .broadcast(value)
        .rounds(rounds)
        .run()?;
    if let crate::sim::RunStatus::MaxRoundsExceeded { limit } = report.status {
        return Err(SimError::MaxRoundsExceeded { limit });
    }
    Ok(broadcast_report(report))
}

/// Runs reliable broadcast with a **Byzantine** designated sender that equivocates,
/// sending `value_a` to half the nodes and `value_b` to the other half.
#[deprecated(
    note = "use Simulation::scenario()...broadcast_equivocating(a, b).rounds(r).run() instead"
)]
pub fn run_broadcast_equivocating_source(
    scenario: &Scenario,
    value_a: u64,
    value_b: u64,
    rounds: u64,
) -> Result<BroadcastReport, SimError> {
    assert!(
        scenario.byzantine >= 1,
        "the equivocating source needs a Byzantine identity"
    );
    let report = scenario
        .builder()
        .max_rounds(scenario.max_rounds.max(rounds))
        .broadcast_equivocating(value_a, value_b)
        .rounds(rounds)
        .run()?;
    if let crate::sim::RunStatus::MaxRoundsExceeded { limit } = report.status {
        return Err(SimError::MaxRoundsExceeded { limit });
    }
    Ok(broadcast_report(report))
}

/// Everything measured in one rotor-coordinator run.
#[deprecated(note = "use the RunReport produced by the Simulation builder instead")]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorReport {
    /// Rounds until the last correct node terminated.
    pub rounds: u64,
    /// Number of coordinators selected by the first correct node.
    pub selected: usize,
    /// Whether a *good round* occurred: a loop round in which every correct node
    /// selected the same correct coordinator.
    pub good_round: bool,
    /// Total point-to-point messages sent by correct nodes.
    pub messages: u64,
}

/// Runs the standalone rotor-coordinator under the selected announcement adversary.
#[deprecated(note = "use Simulation::scenario()...rotor().run() instead")]
pub fn run_rotor(scenario: &Scenario, adversary: AdversaryKind) -> Result<RotorReport, SimError> {
    let report = scenario.builder().adversary(adversary).rotor().run()?;
    let rounds = match report.status {
        crate::sim::RunStatus::Completed { rounds } => rounds,
        crate::sim::RunStatus::MaxRoundsExceeded { limit } => {
            return Err(SimError::MaxRoundsExceeded { limit })
        }
    };
    let section = report.rotor.expect("the rotor factory fills its section");
    Ok(RotorReport {
        rounds,
        selected: section.selected,
        good_round: section.good_round,
        messages: report.messages.correct,
    })
}

/// Everything measured in one approximate-agreement run.
#[deprecated(note = "use the RunReport produced by the Simulation builder instead")]
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxReport {
    /// Input range of the correct nodes.
    pub input_range: (f64, f64),
    /// Output range of the correct nodes.
    pub output_range: (f64, f64),
    /// Whether every output lies within the input range.
    pub outputs_in_range: bool,
    /// `(output range) / (input range)` — the paper guarantees < 1 (½ for one round).
    pub contraction: f64,
}

/// Runs single-shot approximate agreement on the given correct inputs, with Byzantine
/// nodes pushing extreme outliers to half the nodes each.
#[deprecated(note = "use Simulation::scenario()...approx(inputs).run() instead")]
pub fn run_approx(scenario: &Scenario, inputs: &[f64]) -> Result<ApproxReport, SimError> {
    assert_eq!(inputs.len(), scenario.correct);
    let report = scenario
        .builder()
        .max_rounds(5)
        .adversary(AdversaryKind::Worst)
        .approx(inputs)
        .run()?;
    if let crate::sim::RunStatus::MaxRoundsExceeded { limit } = report.status {
        return Err(SimError::MaxRoundsExceeded { limit });
    }
    let section = report.approx.expect("the approx factory fills its section");
    Ok(ApproxReport {
        input_range: section.input_range,
        output_range: section.output_range,
        outputs_in_range: section.outputs_in_range,
        contraction: section.contraction,
    })
}

/// Runs iterated approximate agreement and returns the correct-node range after each
/// iteration (used by the convergence experiment and the sensor-fusion example).
#[deprecated(note = "use Simulation::scenario()...iterated_approx(inputs, n).run() instead")]
pub fn run_iterated_approx(
    scenario: &Scenario,
    inputs: &[f64],
    iterations: u64,
) -> Result<Vec<f64>, SimError> {
    assert_eq!(inputs.len(), scenario.correct);
    let report = scenario
        .builder()
        .max_rounds(iterations + 10)
        .iterated_approx(inputs, iterations)
        .run()?;
    if let crate::sim::RunStatus::MaxRoundsExceeded { limit } = report.status {
        return Err(SimError::MaxRoundsExceeded { limit });
    }
    Ok(report
        .spreads
        .expect("the iterated factory fills its section")
        .per_iteration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_accessors() {
        let s = Scenario::new(7, 2, 1);
        assert_eq!(s.n(), 9);
        assert!(s.resilient());
        let (c, b) = s.ids();
        assert_eq!(c.len(), 7);
        assert_eq!(b.len(), 2);
        assert!(!Scenario::new(4, 2, 1).resilient());
        // The builder shim preserves every knob.
        let spec = s.builder().spec().clone();
        assert_eq!((spec.correct, spec.byzantine, spec.seed), (7, 2, 1));
        assert_eq!(spec.max_rounds, 1_000);
    }

    #[test]
    fn consensus_shim_matches_the_old_report_shape() {
        let s = Scenario::new(7, 2, 3);
        let inputs = [0, 1, 0, 1, 0, 1, 0];
        for kind in [
            AdversaryKind::Silent,
            AdversaryKind::AnnounceThenSilent,
            AdversaryKind::PartialAnnounce,
            AdversaryKind::SplitVote,
        ] {
            let report = run_consensus(&s, &inputs, kind).unwrap();
            assert!(report.agreement, "agreement under {kind:?}");
            assert!(report.validity, "validity under {kind:?}");
            assert!(report.rounds > 0 && report.messages > 0);
            assert_eq!(report.decisions.len(), 7);
        }
    }

    #[test]
    fn broadcast_shims_report_consistency() {
        let s = Scenario::new(7, 2, 5);
        let correct = run_broadcast_correct_source(&s, 42, 12).unwrap();
        assert!(correct.consistent);
        assert!(correct.accepted.iter().all(|a| a == &vec![42]));

        let equivocating = run_broadcast_equivocating_source(&s, 1, 2, 12).unwrap();
        assert!(
            equivocating.consistent,
            "equivocation must be exposed consistently"
        );
    }

    #[test]
    fn rotor_shim_finds_a_good_round() {
        let s = Scenario::new(7, 2, 7);
        let report = run_rotor(&s, AdversaryKind::AnnounceThenSilent).unwrap();
        assert!(report.good_round);
        assert!(report.selected >= 1);
        assert!(report.rounds <= 7 + 2 + 10);
    }

    #[test]
    fn approx_shims_report_contraction() {
        let s = Scenario::new(10, 3, 9);
        let inputs: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let report = run_approx(&s, &inputs).unwrap();
        assert!(report.outputs_in_range);
        assert!(report.contraction < 1.0);

        let spreads = run_iterated_approx(&s, &inputs, 5).unwrap();
        assert!(
            spreads.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "spread is non-increasing"
        );
        assert!(spreads.last().unwrap() < &10.0);
    }
}
