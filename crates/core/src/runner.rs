//! One-call experiment drivers.
//!
//! The examples, the integration tests and the benchmark harness all need the same
//! plumbing: generate sparse identifiers, build the nodes, pick an adversary, run the
//! engine, and summarise what happened (decisions, rounds, messages, property
//! violations). This module packages that plumbing so a scenario is a single function
//! call with a [`Scenario`] describing the system and an adversary selector.

use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, NodeId, SimError, SyncEngine};

use crate::adversaries::{AnnounceThenSilent, EquivocatingSource, PartialAnnounce, SplitVote};
use crate::approx::{ApproxAgreement, IteratedApproxAgreement};
use crate::consensus::Consensus;
use crate::reliable_broadcast::ReliableBroadcast;
use crate::rotor::RotorCoordinator;
use crate::value::Real;

/// Description of a system to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Number of correct nodes.
    pub correct: usize,
    /// Number of Byzantine identities handed to the adversary.
    pub byzantine: usize,
    /// Identifier-generation strategy.
    pub id_space: IdSpace,
    /// Seed for identifier generation and any adversary randomness.
    pub seed: u64,
    /// Hard cap on rounds before the run is declared stuck.
    pub max_rounds: u64,
}

impl Scenario {
    /// A scenario with `correct` correct and `byzantine` Byzantine nodes, default
    /// sparse identifiers and a generous round budget.
    pub fn new(correct: usize, byzantine: usize, seed: u64) -> Self {
        Scenario {
            correct,
            byzantine,
            id_space: IdSpace::default(),
            seed,
            max_rounds: 1_000,
        }
    }

    /// Total number of nodes `n`.
    pub fn n(&self) -> usize {
        self.correct + self.byzantine
    }

    /// Whether the scenario satisfies the optimal resiliency `n > 3f`.
    pub fn resilient(&self) -> bool {
        crate::quorum::resilient(self.n(), self.byzantine)
    }

    /// Generates the identifiers: the first `correct` are correct nodes, the rest are
    /// handed to the adversary.
    pub fn ids(&self) -> (Vec<NodeId>, Vec<NodeId>) {
        let ids = self.id_space.generate(self.n(), self.seed);
        let (c, b) = ids.split_at(self.correct);
        (c.to_vec(), b.to_vec())
    }
}

/// Adversary strategies selectable by name in experiment sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Byzantine nodes never speak (they are invisible).
    Silent,
    /// Byzantine nodes announce themselves in round 1 and then stay silent.
    AnnounceThenSilent,
    /// Byzantine nodes announce themselves to only half of the correct nodes.
    PartialAnnounce,
    /// Byzantine nodes split their votes between the two most popular values.
    SplitVote,
}

/// Everything measured in one consensus run.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsensusReport {
    /// The decided value of every correct node, in construction order.
    pub decisions: Vec<u64>,
    /// Rounds until the last correct node decided.
    pub rounds: u64,
    /// Total point-to-point messages sent by correct nodes.
    pub messages: u64,
    /// Whether every correct node decided the same value.
    pub agreement: bool,
    /// Whether the decided value was the input of some correct node.
    pub validity: bool,
}

/// Runs binary consensus with the given inputs under the selected adversary.
pub fn run_consensus(
    scenario: &Scenario,
    inputs: &[u64],
    adversary: AdversaryKind,
) -> Result<ConsensusReport, SimError> {
    assert_eq!(inputs.len(), scenario.correct, "one input per correct node");
    let (correct_ids, byz_ids) = scenario.ids();
    let nodes: Vec<Consensus<u64>> = correct_ids
        .iter()
        .zip(inputs)
        .map(|(&id, &input)| Consensus::new(id, input))
        .collect();

    macro_rules! run_with {
        ($adv:expr) => {{
            let mut engine = SyncEngine::new(nodes, $adv, byz_ids);
            engine.run_until_all_terminated(scenario.max_rounds)?;
            let decisions: Vec<u64> = engine
                .outputs()
                .into_iter()
                .map(|(_, d)| d.expect("terminated nodes decided").value)
                .collect();
            (decisions, engine.round(), engine.metrics().correct_messages)
        }};
    }

    let (decisions, rounds, messages) = match adversary {
        AdversaryKind::Silent => run_with!(SilentAdversary),
        AdversaryKind::AnnounceThenSilent => run_with!(AnnounceThenSilent),
        AdversaryKind::PartialAnnounce => run_with!(PartialAnnounce),
        AdversaryKind::SplitVote => run_with!(SplitVote::new(0u64, 1u64)),
    };

    let agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    let validity = decisions.first().map(|v| inputs.contains(v)).unwrap_or(false)
        && (!inputs.iter().all(|&i| i == inputs[0]) || decisions.iter().all(|&d| d == inputs[0]));
    Ok(ConsensusReport { decisions, rounds, messages, agreement, validity })
}

/// Everything measured in one reliable-broadcast run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastReport {
    /// For every correct node: the set of values it accepted.
    pub accepted: Vec<Vec<u64>>,
    /// Rounds executed.
    pub rounds: u64,
    /// Total point-to-point messages sent by correct nodes.
    pub messages: u64,
    /// Whether all correct nodes accepted exactly the same set of values.
    pub consistent: bool,
}

/// Runs reliable broadcast with a **correct** designated sender broadcasting `value`.
pub fn run_broadcast_correct_source(
    scenario: &Scenario,
    value: u64,
    rounds: u64,
) -> Result<BroadcastReport, SimError> {
    let (correct_ids, byz_ids) = scenario.ids();
    let source = correct_ids[0];
    let nodes: Vec<ReliableBroadcast<u64>> = correct_ids
        .iter()
        .map(|&id| {
            if id == source {
                ReliableBroadcast::sender(id, value)
            } else {
                ReliableBroadcast::receiver(id, source)
            }
        })
        .collect();
    let mut engine = SyncEngine::new(nodes, AnnounceThenSilent, byz_ids);
    engine.run_rounds(rounds)?;
    Ok(summarise_broadcast(engine))
}

/// Runs reliable broadcast with a **Byzantine** designated sender that equivocates,
/// sending `value_a` to half the nodes and `value_b` to the other half.
pub fn run_broadcast_equivocating_source(
    scenario: &Scenario,
    value_a: u64,
    value_b: u64,
    rounds: u64,
) -> Result<BroadcastReport, SimError> {
    assert!(scenario.byzantine >= 1, "the equivocating source needs a Byzantine identity");
    let (correct_ids, byz_ids) = scenario.ids();
    let source = byz_ids[0];
    let nodes: Vec<ReliableBroadcast<u64>> =
        correct_ids.iter().map(|&id| ReliableBroadcast::receiver(id, source)).collect();
    let adversary = EquivocatingSource::new(source, value_a, value_b);
    let mut engine = SyncEngine::new(nodes, adversary, byz_ids);
    engine.run_rounds(rounds)?;
    Ok(summarise_broadcast(engine))
}

fn summarise_broadcast<A>(engine: SyncEngine<ReliableBroadcast<u64>, A>) -> BroadcastReport
where
    A: uba_simnet::Adversary<crate::reliable_broadcast::RbMessage<u64>>,
{
    let accepted: Vec<Vec<u64>> = engine
        .nodes()
        .iter()
        .map(|n| {
            let mut values: Vec<u64> = n.accepted().iter().map(|a| a.message).collect();
            values.sort_unstable();
            values
        })
        .collect();
    let consistent = accepted.windows(2).all(|w| w[0] == w[1]);
    BroadcastReport {
        consistent,
        rounds: engine.round(),
        messages: engine.metrics().correct_messages,
        accepted,
    }
}

/// Everything measured in one rotor-coordinator run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorReport {
    /// Rounds until the last correct node terminated.
    pub rounds: u64,
    /// Number of coordinators selected by the first correct node.
    pub selected: usize,
    /// Whether a *good round* occurred: a loop round in which every correct node
    /// selected the same correct coordinator.
    pub good_round: bool,
    /// Total point-to-point messages sent by correct nodes.
    pub messages: u64,
}

/// Runs the standalone rotor-coordinator under the selected announcement adversary.
pub fn run_rotor(scenario: &Scenario, adversary: AdversaryKind) -> Result<RotorReport, SimError> {
    let (correct_ids, byz_ids) = scenario.ids();
    let nodes: Vec<RotorCoordinator<u64>> =
        correct_ids.iter().map(|&id| RotorCoordinator::new(id, id.raw())).collect();

    fn drive<A: uba_simnet::Adversary<crate::rotor::RotorMessage<u64>>>(
        nodes: Vec<RotorCoordinator<u64>>,
        byz_ids: Vec<NodeId>,
        adversary: A,
        max_rounds: u64,
    ) -> Result<RotorReport, SimError> {
        let mut engine = SyncEngine::new(nodes, adversary, byz_ids);
        engine.run_until_all_terminated(max_rounds)?;
        let correct: std::collections::BTreeSet<NodeId> =
            engine.correct_ids().into_iter().collect();
        let histories: Vec<_> = engine.nodes().iter().map(|n| n.state().history()).collect();
        let shortest = histories.iter().map(|h| h.len()).min().unwrap_or(0);
        let mut good_round = false;
        for r in 0..shortest {
            let selections: std::collections::BTreeSet<NodeId> =
                histories.iter().map(|h| h[r].coordinator).collect();
            if selections.len() == 1 && correct.contains(selections.iter().next().unwrap()) {
                good_round = true;
                break;
            }
        }
        Ok(RotorReport {
            rounds: engine.round(),
            selected: engine.nodes()[0].state().selected().len(),
            good_round,
            messages: engine.metrics().correct_messages,
        })
    }

    match adversary {
        AdversaryKind::Silent => drive(nodes, byz_ids, SilentAdversary, scenario.max_rounds),
        AdversaryKind::AnnounceThenSilent | AdversaryKind::SplitVote => {
            drive(nodes, byz_ids, AnnounceThenSilent, scenario.max_rounds)
        }
        AdversaryKind::PartialAnnounce => {
            drive(nodes, byz_ids, PartialAnnounce, scenario.max_rounds)
        }
    }
}

/// Everything measured in one approximate-agreement run.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxReport {
    /// Input range of the correct nodes.
    pub input_range: (f64, f64),
    /// Output range of the correct nodes.
    pub output_range: (f64, f64),
    /// Whether every output lies within the input range.
    pub outputs_in_range: bool,
    /// `(output range) / (input range)` — the paper guarantees < 1 (½ for one round).
    pub contraction: f64,
}

/// Runs single-shot approximate agreement on the given correct inputs, with Byzantine
/// nodes pushing extreme outliers to half the nodes each.
pub fn run_approx(scenario: &Scenario, inputs: &[f64]) -> Result<ApproxReport, SimError> {
    assert_eq!(inputs.len(), scenario.correct);
    let (correct_ids, byz_ids) = scenario.ids();
    let nodes: Vec<ApproxAgreement> = correct_ids
        .iter()
        .zip(inputs)
        .map(|(&id, &x)| ApproxAgreement::new(id, Real::from_f64(x)))
        .collect();
    let byz_clone = byz_ids.clone();
    let adversary = uba_simnet::FnAdversary::new(move |view: &uba_simnet::AdversaryView<'_, Real>| {
        if view.round != 1 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (b, &from) in byz_clone.iter().enumerate() {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                let value = if (i + b) % 2 == 0 { Real::from_f64(-1e9) } else { Real::from_f64(1e9) };
                out.push(uba_simnet::Directed::new(from, to, value));
            }
        }
        out
    });
    let mut engine = SyncEngine::new(nodes, adversary, byz_ids);
    engine.run_until_all_output(5)?;
    let outputs: Vec<f64> =
        engine.outputs().into_iter().map(|(_, o)| o.unwrap().to_f64()).collect();

    let imin = inputs.iter().cloned().fold(f64::INFINITY, f64::min);
    let imax = inputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let omin = outputs.iter().cloned().fold(f64::INFINITY, f64::min);
    let omax = outputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let input_spread = imax - imin;
    let output_spread = omax - omin;
    Ok(ApproxReport {
        input_range: (imin, imax),
        output_range: (omin, omax),
        outputs_in_range: omin >= imin - 1e-9 && omax <= imax + 1e-9,
        contraction: if input_spread > 0.0 { output_spread / input_spread } else { 0.0 },
    })
}

/// Runs iterated approximate agreement and returns the correct-node range after each
/// iteration (used by the convergence experiment and the sensor-fusion example).
pub fn run_iterated_approx(
    scenario: &Scenario,
    inputs: &[f64],
    iterations: u64,
) -> Result<Vec<f64>, SimError> {
    assert_eq!(inputs.len(), scenario.correct);
    let (correct_ids, byz_ids) = scenario.ids();
    let nodes: Vec<IteratedApproxAgreement> = correct_ids
        .iter()
        .zip(inputs)
        .map(|(&id, &x)| IteratedApproxAgreement::new(id, Real::from_f64(x), iterations))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, byz_ids);
    engine.run_until_all_terminated(iterations + 10)?;
    let mut spreads = Vec::new();
    for i in 0..iterations as usize {
        let values: Vec<f64> =
            engine.nodes().iter().map(|n| n.history()[i].to_f64()).collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        spreads.push(hi - lo);
    }
    Ok(spreads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_accessors() {
        let s = Scenario::new(7, 2, 1);
        assert_eq!(s.n(), 9);
        assert!(s.resilient());
        let (c, b) = s.ids();
        assert_eq!(c.len(), 7);
        assert_eq!(b.len(), 2);
        assert!(!Scenario::new(4, 2, 1).resilient());
    }

    #[test]
    fn consensus_runner_reports_agreement_and_validity() {
        let s = Scenario::new(7, 2, 3);
        let inputs = [0, 1, 0, 1, 0, 1, 0];
        for kind in [
            AdversaryKind::Silent,
            AdversaryKind::AnnounceThenSilent,
            AdversaryKind::PartialAnnounce,
            AdversaryKind::SplitVote,
        ] {
            let report = run_consensus(&s, &inputs, kind).unwrap();
            assert!(report.agreement, "agreement under {kind:?}");
            assert!(report.validity, "validity under {kind:?}");
            assert!(report.rounds > 0 && report.messages > 0);
        }
    }

    #[test]
    fn broadcast_runners_report_consistency() {
        let s = Scenario::new(7, 2, 5);
        let correct = run_broadcast_correct_source(&s, 42, 12).unwrap();
        assert!(correct.consistent);
        assert!(correct.accepted.iter().all(|a| a == &vec![42]));

        let equivocating = run_broadcast_equivocating_source(&s, 1, 2, 12).unwrap();
        assert!(equivocating.consistent, "equivocation must be exposed consistently");
    }

    #[test]
    fn rotor_runner_finds_a_good_round() {
        let s = Scenario::new(7, 2, 7);
        let report = run_rotor(&s, AdversaryKind::AnnounceThenSilent).unwrap();
        assert!(report.good_round);
        assert!(report.selected >= 1);
        assert!(report.rounds <= 7 + 2 + 10);
    }

    #[test]
    fn approx_runner_reports_contraction() {
        let s = Scenario::new(10, 3, 9);
        let inputs: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let report = run_approx(&s, &inputs).unwrap();
        assert!(report.outputs_in_range);
        assert!(report.contraction < 1.0);

        let spreads = run_iterated_approx(&s, &inputs, 5).unwrap();
        assert!(spreads.windows(2).all(|w| w[1] <= w[0] + 1e-9), "spread is non-increasing");
        assert!(spreads.last().unwrap() < &10.0);
    }
}
