//! Protocol factories and fluent sugar for the unified [`Simulation`] driver.
//!
//! The generic pieces — [`Simulation`], [`ScenarioBuilder`], [`ProtocolFactory`],
//! [`Harness`], [`RunReport`] — live in [`uba_simnet::sim`] and are re-exported
//! here; this module adds a [`ProtocolFactory`] implementation for every id-only
//! algorithm of the paper, so any scenario description can be pointed at any
//! protocol:
//!
//! | Factory | Protocol | Report section |
//! |---|---|---|
//! | [`ConsensusFactory`] | Algorithm 3 (`Consensus<u64>`) | `consensus` |
//! | [`BroadcastFactory`] | Algorithm 1 (`ReliableBroadcast<u64>`) | `broadcast` |
//! | [`RotorFactory`] | Algorithm 2 (`RotorCoordinator<u64>`) | `rotor` |
//! | [`ApproxFactory`] | Algorithm 4 (`ApproxAgreement`) | `approx` |
//! | [`IteratedApproxFactory`] | iterated Algorithm 4 | `spreads` + `approx` |
//! | [`ParallelConsensusFactory`] | Algorithm 5 (`ParallelConsensus<u64>`) | `parallel` |
//! | [`TotalOrderFactory`] | Algorithm 6 (`TotalOrderNode<E>`) | `chain` |
//!
//! The [`ScenarioExt`] trait hangs protocol-specific conveniences off the generic
//! builder, so the common cases are one chain:
//!
//! ```
//! use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
//!
//! let report = Simulation::scenario()
//!     .correct(7)
//!     .byzantine(2)
//!     .seed(42)
//!     .adversary(AdversaryKind::SplitVote)
//!     .consensus(&[0, 1, 0, 1, 0, 1, 0])
//!     .run()
//!     .unwrap();
//! assert!(report.consensus.unwrap().agreement);
//! ```

use std::collections::BTreeSet;

use uba_simnet::adversary::SilentAdversary;
use uba_simnet::sim::scripted_attack_behavior;
use uba_simnet::vocab::{PayloadVocab, VocabScene};
use uba_simnet::{
    Adversary, AdversaryView, Directed, FnAdversary, NodeId, Protocol, Recoverable, Snapshotter,
};

pub use uba_simnet::attack::{
    ActorRange, AdaptiveStrategy, AttackBehavior, AttackPlan, AttackStep,
};
pub use uba_simnet::sim::{
    approx_section_from_values, consensus_section_from_parts, ApproxSection, BroadcastSection,
    ChainSection, ConsensusDecision, ConsensusSection, MarginMetric, MarginSection, MessageStats,
    NodeAcceptSet, NodePairs, NodeReport, OracleMargin, OracleVerdict, ParallelSection,
    RecoverySection, RotorSection, SpreadSection,
};
pub use uba_simnet::sim::{
    AdversaryKind, BoxedAdversary, BuildContext, Harness, NamedAdversary, ProtocolFactory,
    RunReport, RunStatus, ScenarioBuilder, ScenarioSpec, Simulation, StopCondition,
};
pub use uba_simnet::stream::{
    MuxNode, StreamDriver, StreamInstance, StreamInstanceReport, StreamSection,
};
pub use uba_simnet::sweep::{CrashPlan, ScenarioGrid, SweepCase};
pub use uba_simnet::wal::{RestartPolicy, RestartRecord, WalConfig, WalFault};

use crate::adversaries::{
    AnnounceThenSilent, AnnounceToSubset, EquivocatingSource, GhostPairInjector, PartialAnnounce,
    SplitVote,
};
use crate::approx::{ApproxAgreement, IteratedApproxAgreement};
use crate::consensus::{Consensus, ConsensusMessage};
use crate::parallel_consensus::ParallelConsensus;
use crate::reliable_broadcast::{RbMessage, ReliableBroadcast};
use crate::rotor::{RotorCoordinator, RotorMessage};
use crate::total_order::{chains_agree, TotalOrderNode};
use crate::value::{Opinion, Real};

// ---------------------------------------------------------------------------
// Consensus (Algorithm 3)
// ---------------------------------------------------------------------------

/// Factory for binary/multi-valued consensus over `u64` opinions.
#[derive(Clone, Debug)]
pub struct ConsensusFactory {
    inputs: Vec<u64>,
}

impl ConsensusFactory {
    /// One input per correct node, in construction order.
    pub fn new(inputs: impl Into<Vec<u64>>) -> Self {
        ConsensusFactory {
            inputs: inputs.into(),
        }
    }

    /// The two most popular correct input values (ties broken by value), which is
    /// what a split-vote adversary pushes — splitting between values nobody holds
    /// would degrade the attack to background noise. Falls back to `(v, v ^ 1)` for
    /// unanimous inputs and `(0, 1)` for an empty input set.
    fn split_values(&self) -> (u64, u64) {
        let mut counts: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        for &input in &self.inputs {
            *counts.entry(input).or_default() += 1;
        }
        let mut ranked: Vec<(u64, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        match (ranked.first(), ranked.get(1)) {
            (Some(&(first, _)), Some(&(second, _))) => (first, second),
            (Some(&(only, _)), None) => (only, only ^ 1),
            _ => (0, 1),
        }
    }
}

/// Builds a pipelined consensus stream: one [`ConsensusFactory`] instance per
/// schedule entry `(start_round, batch_size, batch_value)`, all `n` nodes of an
/// instance proposing the same content-addressed batch value (the leader's
/// batch digest, the way a blockchain's replicas vote on a block hash). The
/// agreement digest compares decided *values* only, so two nodes deciding the
/// same value in different phases or rounds do not count as disagreement.
pub fn consensus_stream(
    n: usize,
    schedule: impl IntoIterator<Item = (u64, usize, u64)>,
) -> StreamDriver<ConsensusFactory> {
    let mut driver = StreamDriver::new("consensus").digest(std::sync::Arc::new(
        |decision: &crate::consensus::Decision<u64>| decision.value.to_string(),
    ));
    for (start_round, batch_size, batch_value) in schedule {
        driver = driver.push(
            start_round,
            batch_size,
            ConsensusFactory::new(vec![batch_value; n]),
        );
    }
    driver
}

impl ProtocolFactory for ConsensusFactory {
    type Node = Consensus<u64>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "consensus".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<Consensus<u64>> {
        assert_eq!(
            self.inputs.len(),
            ctx.correct_ids.len(),
            "one consensus input per correct node"
        );
        ctx.correct_ids
            .iter()
            .zip(&self.inputs)
            .map(|(&id, &input)| Consensus::new(id, input))
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::consensus::ConsensusMessage<u64>> {
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            AdversaryKind::AnnounceThenSilent => {
                NamedAdversary::new(kind.name(), AnnounceThenSilent)
            }
            AdversaryKind::PartialAnnounce => NamedAdversary::new(kind.name(), PartialAnnounce),
            AdversaryKind::SplitVote | AdversaryKind::Worst => {
                let (low, high) = self.split_values();
                NamedAdversary::new("split-vote", SplitVote::new(low, high))
            }
        }
    }

    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<crate::consensus::ConsensusMessage<u64>> {
        match *behavior {
            // Vote equivocation *is* the split-vote attack, with the plan choosing
            // the pushed values instead of the input histogram.
            AttackBehavior::Equivocate { low, high } => {
                NamedAdversary::new("split-vote", SplitVote::new(low, high))
            }
            AttackBehavior::AnnounceToSubset { modulus, remainder } => NamedAdversary::new(
                "announce-to-subset",
                AnnounceToSubset::new(modulus, remainder),
            ),
            ref other => scripted_attack_behavior(self, other, ctx),
        }
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<crate::consensus::ConsensusMessage<u64>>>> {
        Some(Box::new(self.clone()))
    }

    fn record(&self, ctx: &BuildContext, nodes: &[Consensus<u64>], report: &mut RunReport) {
        let inputs: Vec<(NodeId, u64)> = ctx
            .correct_ids
            .iter()
            .copied()
            .zip(self.inputs.iter().copied())
            .collect();
        let mut decisions = Vec::new();
        let mut undecided = Vec::new();
        for node in nodes {
            match node.decision() {
                Some(decision) => decisions.push(ConsensusDecision {
                    node: node.id(),
                    value: decision.value,
                    phase: decision.phase,
                    round: decision.round,
                }),
                None => undecided.push(node.id()),
            }
        }
        report.consensus = Some(consensus_section_from_parts(inputs, decisions, undecided));
    }
}

/// The consensus wire vocabulary, phase-aware: Algorithm 3 runs `Init`/`Echo`
/// rounds and then five-round phases (`Input`, `Prefer`, `StrongPrefer`,
/// `Opinion`, resolve), so valid and boundary payloads must carry the message
/// shape the correct nodes are counting *this* round.
impl PayloadVocab<ConsensusMessage<u64>> for ConsensusFactory {
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<ConsensusMessage<u64>> {
        let (low, _) = self.split_values();
        match scene.round {
            1 => vec![ConsensusMessage::Init],
            2 => scene
                .byzantine_ids
                .iter()
                .take(2)
                .map(|&b| ConsensusMessage::Echo(b))
                .collect(),
            r => match (r - 3) % 5 {
                0 => vec![ConsensusMessage::Input(low)],
                1 => vec![ConsensusMessage::Prefer(low)],
                2 => vec![ConsensusMessage::StrongPrefer(low)],
                3 => vec![ConsensusMessage::Opinion(low)],
                _ => Vec::new(),
            },
        }
    }

    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<ConsensusMessage<u64>> {
        // The equivocation pair at the phase-appropriate shape — the split-vote
        // attack with the plan (not the input histogram) choosing the values.
        let (low, high) = self.split_values();
        match scene.round {
            1 => vec![ConsensusMessage::Init],
            2 => scene
                .byzantine_ids
                .iter()
                .take(2)
                .map(|&b| ConsensusMessage::Echo(b))
                .collect(),
            r => match (r - 3) % 5 {
                0 => vec![ConsensusMessage::Input(low), ConsensusMessage::Input(high)],
                1 => vec![
                    ConsensusMessage::Prefer(low),
                    ConsensusMessage::Prefer(high),
                ],
                2 => vec![
                    ConsensusMessage::StrongPrefer(low),
                    ConsensusMessage::StrongPrefer(high),
                ],
                3 => vec![
                    ConsensusMessage::Opinion(low),
                    ConsensusMessage::Opinion(high),
                ],
                _ => Vec::new(),
            },
        }
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<ConsensusMessage<u64>> {
        vec![
            ConsensusMessage::Echo(scene.ghost_id(0)),
            ConsensusMessage::Opinion(scene.derived_value(0)),
            ConsensusMessage::Input(u64::MAX),
        ]
    }
}

// ---------------------------------------------------------------------------
// Reliable broadcast (Algorithm 1)
// ---------------------------------------------------------------------------

/// Factory for reliable broadcast over `u64` messages, with either a correct
/// designated sender or an equivocating Byzantine one.
#[derive(Clone, Debug)]
pub struct BroadcastFactory {
    value: u64,
    equivocate: Option<(u64, u64)>,
}

impl BroadcastFactory {
    /// A **correct** designated sender (the first correct node) broadcasting `value`.
    pub fn correct_source(value: u64) -> Self {
        BroadcastFactory {
            value,
            equivocate: None,
        }
    }

    /// A **Byzantine** designated sender (the first Byzantine identity) sending
    /// `value_a` to half the correct nodes and `value_b` to the other half.
    pub fn equivocating_source(value_a: u64, value_b: u64) -> Self {
        BroadcastFactory {
            value: value_a,
            equivocate: Some((value_a, value_b)),
        }
    }

    fn source(&self, ctx: &BuildContext) -> NodeId {
        if self.equivocate.is_some() {
            *ctx.byzantine_ids
                .first()
                .expect("an equivocating source needs a Byzantine identity")
        } else {
            *ctx.correct_ids
                .first()
                .expect("a correct source needs a correct node")
        }
    }
}

impl ProtocolFactory for BroadcastFactory {
    type Node = ReliableBroadcast<u64>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "reliable-broadcast".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<ReliableBroadcast<u64>> {
        let source = self.source(ctx);
        ctx.correct_ids
            .iter()
            .map(|&id| {
                if id == source {
                    ReliableBroadcast::sender(id, self.value)
                } else {
                    ReliableBroadcast::receiver(id, source)
                }
            })
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        ctx: &BuildContext,
    ) -> NamedAdversary<crate::reliable_broadcast::RbMessage<u64>> {
        if let Some((value_a, value_b)) = self.equivocate {
            // The equivocating source *is* the attack; the kind is irrelevant.
            return NamedAdversary::new(
                "equivocating-source",
                EquivocatingSource::new(self.source(ctx), value_a, value_b),
            );
        }
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            AdversaryKind::PartialAnnounce => NamedAdversary::new(kind.name(), PartialAnnounce),
            AdversaryKind::AnnounceThenSilent | AdversaryKind::SplitVote | AdversaryKind::Worst => {
                NamedAdversary::new("announce-then-silent", AnnounceThenSilent)
            }
        }
    }

    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<crate::reliable_broadcast::RbMessage<u64>> {
        match *behavior {
            // Sender equivocation needs a Byzantine designated sender; with one
            // configured, the plan chooses the two conflicting values.
            AttackBehavior::Equivocate { low, high } if self.equivocate.is_some() => {
                NamedAdversary::new(
                    "equivocating-source",
                    EquivocatingSource::new(self.source(ctx), low, high),
                )
            }
            AttackBehavior::AnnounceToSubset { modulus, remainder } => NamedAdversary::new(
                "announce-to-subset",
                AnnounceToSubset::new(modulus, remainder),
            ),
            ref other => scripted_attack_behavior(self, other, ctx),
        }
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<crate::reliable_broadcast::RbMessage<u64>>>> {
        Some(Box::new(self.clone()))
    }

    fn stop_condition(&self) -> StopCondition {
        // Reliable broadcast never terminates in the paper; 12 rounds comfortably
        // cover acceptance plus the relay deadline at every size the suite uses.
        StopCondition::FixedRounds(12)
    }

    fn record(&self, ctx: &BuildContext, nodes: &[ReliableBroadcast<u64>], report: &mut RunReport) {
        let accepted: Vec<NodeAcceptSet> = nodes
            .iter()
            .map(|node| {
                let mut values: Vec<(u64, u64)> = node
                    .accepted()
                    .iter()
                    .map(|a| (a.message, a.round))
                    .collect();
                values.sort_unstable();
                NodeAcceptSet {
                    node: node.id(),
                    values,
                }
            })
            .collect();
        let sets: Vec<Vec<u64>> = accepted
            .iter()
            .map(|set| set.values.iter().map(|&(message, _)| message).collect())
            .collect();
        let consistent = sets.windows(2).all(|w| w[0] == w[1]);
        report.broadcast = Some(BroadcastSection {
            source: self.source(ctx),
            source_correct: self.equivocate.is_none(),
            sent: self.equivocate.is_none().then_some(self.value),
            accepted,
            consistent,
        });
    }
}

/// The broadcast wire vocabulary. The boundary payload is a **forged-value
/// echo**: `f` Byzantine echoes of a value the correct sender never broadcast
/// meet the `n_v/3` support rule *exactly* at `n = 3f` (`3·f ≥ n_v`), at which
/// point the correct nodes amplify the forgery to full acceptance — an
/// unforgeability violation. One node inside the bound (`n > 3f`) the same
/// echoes fall below every threshold and are inert, which is precisely the
/// tightness argument Theorem 1's bound needs.
impl PayloadVocab<RbMessage<u64>> for BroadcastFactory {
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<RbMessage<u64>> {
        match scene.round {
            1 => vec![RbMessage::Present],
            _ => vec![RbMessage::Echo(self.value)],
        }
    }

    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<RbMessage<u64>> {
        let forged = self.value ^ 0x5A5A;
        match scene.round {
            1 => vec![RbMessage::Present],
            _ => vec![RbMessage::Echo(forged)],
        }
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<RbMessage<u64>> {
        vec![
            RbMessage::Init(scene.derived_value(0)),
            RbMessage::Echo(scene.derived_value(1)),
            RbMessage::Present,
        ]
    }
}

// ---------------------------------------------------------------------------
// Rotor-coordinator (Algorithm 2)
// ---------------------------------------------------------------------------

/// Factory for the standalone rotor-coordinator; each node's opinion is its raw
/// identifier, which makes coordinator acceptance observable in reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct RotorFactory;

impl ProtocolFactory for RotorFactory {
    type Node = RotorCoordinator<u64>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "rotor".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<RotorCoordinator<u64>> {
        ctx.correct_ids
            .iter()
            .map(|&id| RotorCoordinator::new(id, id.raw()))
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::rotor::RotorMessage<u64>> {
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            AdversaryKind::PartialAnnounce => NamedAdversary::new(kind.name(), PartialAnnounce),
            AdversaryKind::AnnounceThenSilent | AdversaryKind::SplitVote | AdversaryKind::Worst => {
                NamedAdversary::new("announce-then-silent", AnnounceThenSilent)
            }
        }
    }

    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<crate::rotor::RotorMessage<u64>> {
        match *behavior {
            AttackBehavior::AnnounceToSubset { modulus, remainder } => NamedAdversary::new(
                "announce-to-subset",
                AnnounceToSubset::new(modulus, remainder),
            ),
            ref other => scripted_attack_behavior(self, other, ctx),
        }
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<crate::rotor::RotorMessage<u64>>>> {
        Some(Box::new(*self))
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[RotorCoordinator<u64>], report: &mut RunReport) {
        let correct: BTreeSet<NodeId> = nodes.iter().map(|n| n.id()).collect();
        let histories: Vec<_> = nodes.iter().map(|n| n.state().history()).collect();
        let shortest = histories.iter().map(|h| h.len()).min().unwrap_or(0);
        let good_round = (0..shortest).any(|r| {
            let selections: BTreeSet<NodeId> = histories.iter().map(|h| h[r].coordinator).collect();
            selections.len() == 1 && correct.contains(selections.iter().next().unwrap())
        });
        report.rotor = Some(RotorSection {
            selected: nodes
                .first()
                .map(|n| n.state().selected().len())
                .unwrap_or(0),
            good_round,
        });
    }
}

/// The rotor wire vocabulary. The garbage class emits **one fresh ghost
/// candidate echo per round**: at `n = 3f` the `f` Byzantine votes meet the
/// `n_v/3` support rule, the correct nodes amplify the ghost past `2n_v/3`, and
/// the candidate set `C_v` grows by one forever — the rotation index never
/// revisits a selected coordinator, so Algorithm 2 never terminates. Inside the
/// bound the same echoes never reach support and the rotor is untouched.
impl PayloadVocab<RotorMessage<u64>> for RotorFactory {
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<RotorMessage<u64>> {
        match scene.round {
            1 => vec![RotorMessage::Init],
            _ => scene
                .correct_ids
                .iter()
                .take(1)
                .map(|&c| RotorMessage::Echo(c))
                .collect(),
        }
    }

    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<RotorMessage<u64>> {
        // Vouch for the Byzantine identities as coordinators, and equivocate the
        // opinion a (selected) Byzantine coordinator distributes.
        let mut out: Vec<RotorMessage<u64>> = scene
            .byzantine_ids
            .iter()
            .take(2)
            .map(|&b| RotorMessage::Echo(b))
            .collect();
        if scene.round == 1 {
            out.push(RotorMessage::Init);
        } else {
            out.push(RotorMessage::Opinion(0));
            out.push(RotorMessage::Opinion(u64::MAX));
        }
        out
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<RotorMessage<u64>> {
        vec![
            RotorMessage::Echo(scene.ghost_id(0)),
            RotorMessage::Opinion(scene.derived_value(0)),
        ]
    }
}

// ---------------------------------------------------------------------------
// Approximate agreement (Algorithm 4)
// ---------------------------------------------------------------------------

/// Value-outlier adversary for the approximate-agreement family: Byzantine
/// identities push `±magnitude` to alternating halves of the correct nodes, in
/// round 1 only (`every_round = false`) or in every round.
fn outliers_with(name: &str, magnitude: f64, every_round: bool) -> NamedAdversary<Real> {
    NamedAdversary::new(
        name,
        FnAdversary::new(move |view: &AdversaryView<'_, Real>| {
            if !every_round && view.round != 1 {
                return Vec::new();
            }
            let mut out = Vec::new();
            for (b, &from) in view.byzantine_ids.iter().enumerate() {
                for (i, &to) in view.correct_ids.iter().enumerate() {
                    let value = if (i + b) % 2 == 0 {
                        -magnitude
                    } else {
                        magnitude
                    };
                    out.push(uba_simnet::Directed::new(from, to, Real::from_f64(value)));
                }
            }
            out
        }),
    )
}

/// The round-1 extreme-outlier adversary from the Theorem 4 experiments: Byzantine
/// identities push `±10⁹` to alternating halves of the correct nodes.
fn extreme_outliers() -> NamedAdversary<Real> {
    outliers_with("extreme-outliers", 1e9, false)
}

/// Factory for single-shot approximate agreement on `f64` inputs.
#[derive(Clone, Debug)]
pub struct ApproxFactory {
    inputs: Vec<f64>,
}

impl ApproxFactory {
    /// One input per correct node, in construction order.
    pub fn new(inputs: impl Into<Vec<f64>>) -> Self {
        ApproxFactory {
            inputs: inputs.into(),
        }
    }
}

impl ProtocolFactory for ApproxFactory {
    type Node = ApproxAgreement;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "approx-agreement".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<ApproxAgreement> {
        assert_eq!(
            self.inputs.len(),
            ctx.correct_ids.len(),
            "one input per correct node"
        );
        ctx.correct_ids
            .iter()
            .zip(&self.inputs)
            .map(|(&id, &input)| ApproxAgreement::new(id, Real::from_f64(input)))
            .collect()
    }

    fn adversary(&self, kind: AdversaryKind, _ctx: &BuildContext) -> NamedAdversary<Real> {
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            // Every active strategy maps to the proof's worst case: values have no
            // votes to split and no announcements to withhold, only outliers.
            _ => extreme_outliers(),
        }
    }

    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<Real> {
        match *behavior {
            AttackBehavior::Outliers { magnitude } => outliers_with("outliers", magnitude, false),
            ref other => scripted_attack_behavior(self, other, ctx),
        }
    }

    fn payload_vocab(&self, _ctx: &BuildContext) -> Option<Box<dyn PayloadVocab<Real>>> {
        Some(Box::new(ApproxVocab {
            inputs: self.inputs.clone(),
        }))
    }

    fn stop_condition(&self) -> StopCondition {
        StopCondition::AllOutput
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[ApproxAgreement], report: &mut RunReport) {
        let outputs: Vec<f64> = nodes
            .iter()
            .filter_map(|n| n.output())
            .map(|real| real.to_f64())
            .collect();
        report.approx = Some(approx_section_from_values(self.inputs.clone(), outputs));
    }
}

/// The approximate-agreement vocabulary (shared by the single-shot and iterated
/// factories): real-valued payloads need no phase awareness, only placement.
/// The boundary pair `±10⁹` is dispatched per recipient (payload `j` to nodes
/// `i % 2 == j`), which at `n = 3f` leaves each node's trimmed multiset anchored
/// at a different end of the correct range — with `f = 1` the outputs *equal*
/// the input extremes and the contraction property fails outright.
struct ApproxVocab {
    inputs: Vec<f64>,
}

impl PayloadVocab<Real> for ApproxVocab {
    fn valid(&self, _scene: &VocabScene<'_>) -> Vec<Real> {
        let (lo, hi) = uba_simnet::vocab::input_extremes(&self.inputs);
        vec![Real::from_f64(lo), Real::from_f64(hi)]
    }

    fn boundary(&self, _scene: &VocabScene<'_>) -> Vec<Real> {
        vec![Real::from_f64(-1e9), Real::from_f64(1e9)]
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<Real> {
        let wobble = (scene.round % 7) as f64;
        vec![
            Real::from_f64(1e12 + wobble),
            Real::from_f64(-1e12 - wobble),
            Real::ZERO,
        ]
    }
}

/// Factory for iterated approximate agreement: convergence over a fixed number of
/// iterations, recorded as a per-iteration spread series.
#[derive(Clone, Debug)]
pub struct IteratedApproxFactory {
    inputs: Vec<f64>,
    iterations: u64,
}

impl IteratedApproxFactory {
    /// One input per correct node; the protocol runs `iterations` halving rounds.
    pub fn new(inputs: impl Into<Vec<f64>>, iterations: u64) -> Self {
        IteratedApproxFactory {
            inputs: inputs.into(),
            iterations,
        }
    }
}

impl ProtocolFactory for IteratedApproxFactory {
    type Node = IteratedApproxAgreement;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "iterated-approx".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<IteratedApproxAgreement> {
        assert_eq!(
            self.inputs.len(),
            ctx.correct_ids.len(),
            "one input per correct node"
        );
        ctx.correct_ids
            .iter()
            .zip(&self.inputs)
            .map(|(&id, &input)| {
                IteratedApproxAgreement::new(id, Real::from_f64(input), self.iterations)
            })
            .collect()
    }

    fn adversary(&self, kind: AdversaryKind, _ctx: &BuildContext) -> NamedAdversary<Real> {
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            _ => outliers_with("per-round-outliers", 1e9, true),
        }
    }

    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<Real> {
        match *behavior {
            AttackBehavior::Outliers { magnitude } => {
                outliers_with("per-round-outliers", magnitude, true)
            }
            ref other => scripted_attack_behavior(self, other, ctx),
        }
    }

    fn payload_vocab(&self, _ctx: &BuildContext) -> Option<Box<dyn PayloadVocab<Real>>> {
        Some(Box::new(ApproxVocab {
            inputs: self.inputs.clone(),
        }))
    }

    fn record(
        &self,
        _ctx: &BuildContext,
        nodes: &[IteratedApproxAgreement],
        report: &mut RunReport,
    ) {
        let mut per_iteration = Vec::new();
        for iteration in 0..self.iterations as usize {
            let values: Vec<f64> = nodes
                .iter()
                .filter(|n| n.history().len() > iteration)
                .map(|n| n.history()[iteration].to_f64())
                .collect();
            if values.is_empty() {
                break;
            }
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            per_iteration.push(hi - lo);
        }
        report.spreads = Some(SpreadSection { per_iteration });
        let outputs: Vec<f64> = nodes
            .iter()
            .filter_map(|n| n.output())
            .map(|real| real.to_f64())
            .collect();
        report.approx = Some(approx_section_from_values(self.inputs.clone(), outputs));
    }
}

// ---------------------------------------------------------------------------
// Parallel consensus (Algorithm 5)
// ---------------------------------------------------------------------------

/// Factory for parallel consensus over shared `(instance, value)` pairs.
#[derive(Clone, Debug)]
pub struct ParallelConsensusFactory {
    pairs: Vec<(u64, u64)>,
    ghosts: Vec<(u64, u64)>,
    partial: Option<(u64, u64)>,
}

impl ParallelConsensusFactory {
    /// Every correct node starts with the same `(instance, value)` input pairs.
    pub fn new(pairs: impl Into<Vec<(u64, u64)>>) -> Self {
        ParallelConsensusFactory {
            pairs: pairs.into(),
            ghosts: Vec::new(),
            partial: None,
        }
    }

    /// Fabricated pairs the [`AdversaryKind::Worst`] strategy injects.
    pub fn with_ghost_pairs(mut self, ghosts: impl Into<Vec<(u64, u64)>>) -> Self {
        self.ghosts = ghosts.into();
        self
    }

    /// Adds a pair held by only the **even-indexed** correct nodes (construction
    /// order). The paper guarantees such a pair "may or may not be output — but
    /// is output consistently" inside the bound; it is also exactly where the
    /// `n > 3f` requirement binds, because at `n = 3f` the `f` holders plus the
    /// `f` Byzantine identities form a `2n_v/3` quorum the non-holders cannot
    /// see through (the vocabulary's boundary campaign exploits this).
    pub fn with_partial_pair(mut self, pair: (u64, u64)) -> Self {
        self.partial = Some(pair);
        self
    }
}

impl ProtocolFactory for ParallelConsensusFactory {
    type Node = ParallelConsensus<u64>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "parallel-consensus".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<ParallelConsensus<u64>> {
        ctx.correct_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut pairs = self.pairs.clone();
                if let Some(partial) = self.partial {
                    if i % 2 == 0 {
                        pairs.push(partial);
                    }
                }
                ParallelConsensus::new(id, pairs)
            })
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::early_consensus::ParallelMessage<u64>> {
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            AdversaryKind::PartialAnnounce => NamedAdversary::new(kind.name(), PartialAnnounce),
            AdversaryKind::Worst if !self.ghosts.is_empty() => NamedAdversary::new(
                "ghost-pair-injector",
                GhostPairInjector::new(self.ghosts.clone()),
            ),
            AdversaryKind::AnnounceThenSilent | AdversaryKind::SplitVote | AdversaryKind::Worst => {
                NamedAdversary::new("announce-then-silent", AnnounceThenSilent)
            }
        }
    }

    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<crate::early_consensus::ParallelMessage<u64>> {
        match *behavior {
            AttackBehavior::AnnounceToSubset { modulus, remainder } => NamedAdversary::new(
                "announce-to-subset",
                AnnounceToSubset::new(modulus, remainder),
            ),
            ref other => scripted_attack_behavior(self, other, ctx),
        }
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<crate::early_consensus::ParallelMessage<u64>>>> {
        Some(Box::new(self.clone()))
    }

    fn record(
        &self,
        _ctx: &BuildContext,
        nodes: &[ParallelConsensus<u64>],
        report: &mut RunReport,
    ) {
        let decisions: Vec<NodePairs> = nodes
            .iter()
            .filter_map(|node| {
                node.decision().map(|decision| NodePairs {
                    node: node.id(),
                    pairs: decision.pairs.iter().map(|(&k, &v)| (k, v)).collect(),
                })
            })
            .collect();
        let agreement = decisions.windows(2).all(|w| w[0].pairs == w[1].pairs);
        report.parallel = Some(ParallelSection {
            decisions,
            agreement,
        });
    }
}

/// The parallel-consensus vocabulary, following the five-round phase schedule
/// the instances evaluate (inputs at `(r − 3) % 5 == 0`, prefers next, strong
/// prefers after — the same cadence the consensus split-vote attack tracks, in
/// *every* phase, not just the first). The boundary class equivocates between a
/// partial pair's value and `⊥` on the same instance — the sharpest pressure on
/// Theorem 5's "a partially submitted pair is output *consistently*" clause —
/// falling back to a ghost-instance campaign when the factory has no partial
/// pair.
impl PayloadVocab<crate::early_consensus::ParallelMessage<u64>> for ParallelConsensusFactory {
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<crate::early_consensus::ParallelMessage<u64>> {
        use crate::early_consensus::ParallelMessage as Pm;
        match scene.round {
            1 => vec![Pm::Init],
            2 => scene
                .byzantine_ids
                .iter()
                .take(1)
                .map(|&b| Pm::Echo(b))
                .collect(),
            r => match (r - 3) % 5 {
                0 => self.pairs.iter().map(|&(id, v)| Pm::Input(id, v)).collect(),
                1 => self
                    .pairs
                    .iter()
                    .map(|&(id, v)| Pm::Prefer(id, Some(v)))
                    .collect(),
                2 => self
                    .pairs
                    .iter()
                    .map(|&(id, v)| Pm::StrongPrefer(id, Some(v)))
                    .collect(),
                _ => Vec::new(),
            },
        }
    }

    fn boundary(
        &self,
        scene: &VocabScene<'_>,
    ) -> Vec<crate::early_consensus::ParallelMessage<u64>> {
        use crate::early_consensus::ParallelMessage as Pm;
        // The sharp campaign targets a *partial* pair (one held by the
        // even-indexed correct nodes only, see [`Self::with_partial_pair`]): at
        // n = 3f its f holders plus the f Byzantine identities form a 2n_v/3
        // quorum that only the recipients the adversary courts can see. The
        // boundary partition (payload 0 to even recipients, payload 1 to odd)
        // therefore splits the correct nodes into one half that observes a
        // two-thirds quorum for the pair's value at every step — and decides it —
        // and one half for which the adversary stays silent on the instance, so
        // the phase-1 ⊥-fills (f silent non-holders + f silent Byzantine = 2f =
        // 2n_v/3) drive it to decide ⊥: the pair is output inconsistently, which
        // is exactly the consistency clause of Theorem 5 failing at the
        // boundary. One node inside the bound neither quorum closes, the odd
        // half adopts the value via the n_v/3 rule and decides it one phase
        // later — the bound is tight.
        if let Some((instance, value)) = self.partial {
            return match scene.round {
                1 => vec![Pm::Init],
                2 => Vec::new(),
                r => match (r - 3) % 5 {
                    // `NoPreference` is ignored at the input-counting step, so the
                    // odd half sees the adversary as silent on the instance and
                    // fills ⊥ for it.
                    0 => vec![Pm::Input(instance, value), Pm::NoPreference(instance)],
                    1 => vec![
                        Pm::Prefer(instance, Some(value)),
                        Pm::Prefer(instance, None),
                    ],
                    2 => vec![
                        Pm::StrongPrefer(instance, Some(value)),
                        Pm::StrongPrefer(instance, None),
                    ],
                    // If the rotor happens to select a Byzantine coordinator, its
                    // opinion equivocates along the same partition.
                    3 => vec![
                        Pm::Opinion(instance, Some(value)),
                        Pm::Opinion(instance, None),
                    ],
                    _ => Vec::new(),
                },
            };
        }
        // Without a partial pair the fallback is a *ghost* instance no correct
        // node has as input: its vote landscape is entirely adversary-controlled,
        // though the phase-1 ⊥-fills (2f ≥ 2n_v/3 even at the boundary) mean the
        // ghost always dies consistently — the campaign pressures the reception
        // rules without a theorem-violating payoff. The id is fixed across
        // rounds (campaigns need continuity) and far above every real instance.
        const GHOST_INSTANCE: u64 = 1 << 41;
        match scene.round {
            1 => vec![Pm::Init],
            2 => Vec::new(),
            r => match (r - 3) % 5 {
                0 => vec![Pm::Input(GHOST_INSTANCE, 0), Pm::Input(GHOST_INSTANCE, 1)],
                1 => vec![
                    Pm::Prefer(GHOST_INSTANCE, Some(0)),
                    Pm::Prefer(GHOST_INSTANCE, Some(1)),
                ],
                2 => vec![
                    Pm::StrongPrefer(GHOST_INSTANCE, Some(0)),
                    Pm::StrongPrefer(GHOST_INSTANCE, Some(1)),
                ],
                _ => Vec::new(),
            },
        }
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<crate::early_consensus::ParallelMessage<u64>> {
        use crate::early_consensus::ParallelMessage as Pm;
        vec![
            Pm::Input(scene.ghost_id(0).raw(), scene.derived_value(0)),
            Pm::NoPreference(scene.ghost_id(1).raw()),
            Pm::Opinion(scene.ghost_id(2).raw(), None),
        ]
    }
}

// ---------------------------------------------------------------------------
// Total ordering (Algorithm 6)
// ---------------------------------------------------------------------------

/// External inputs for a total-ordering run: who submits which event before which
/// round, and who announces a leave. Joins go through the scenario's
/// [`ChurnSchedule`](uba_simnet::ChurnSchedule) — the engine constructs joiners via
/// [`TotalOrderFactory`]'s churn constructor.
#[derive(Clone, Debug, Default)]
pub struct TotalOrderPlan<E> {
    /// Total rounds to run.
    pub total_rounds: u64,
    /// `(before round, founder index, payload)` event submissions.
    pub events: Vec<(u64, usize, E)>,
    /// `(before round, founder index)` leave announcements.
    pub leaves: Vec<(u64, usize)>,
}

impl<E> TotalOrderPlan<E> {
    /// A plan running `total_rounds` rounds with no events.
    pub fn rounds(total_rounds: u64) -> Self {
        TotalOrderPlan {
            total_rounds,
            events: Vec::new(),
            leaves: Vec::new(),
        }
    }

    /// Adds an event submitted by the `founder`-th correct node before `round`.
    pub fn event(mut self, round: u64, founder: usize, payload: E) -> Self {
        self.events.push((round, founder, payload));
        self
    }

    /// Has the `founder`-th correct node announce its departure before `round`.
    pub fn leave(mut self, round: u64, founder: usize) -> Self {
        self.leaves.push((round, founder));
        self
    }
}

/// Factory for dynamic total ordering over events of type `E`.
#[derive(Clone, Debug)]
pub struct TotalOrderFactory<E: Opinion> {
    plan: TotalOrderPlan<E>,
    founders: Vec<NodeId>,
}

impl<E: Opinion> TotalOrderFactory<E> {
    /// Creates the factory from an input plan.
    pub fn new(plan: TotalOrderPlan<E>) -> Self {
        TotalOrderFactory {
            plan,
            founders: Vec::new(),
        }
    }

    fn leaver_ids(&self) -> Vec<NodeId> {
        self.plan
            .leaves
            .iter()
            .filter_map(|&(_, index)| self.founders.get(index).copied())
            .collect()
    }
}

impl<E: Opinion + Send + Sync + 'static> ProtocolFactory for TotalOrderFactory<E> {
    type Node = TotalOrderNode<E>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "total-order".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<TotalOrderNode<E>> {
        self.founders = ctx.correct_ids.clone();
        ctx.correct_ids
            .iter()
            .map(|&id| TotalOrderNode::founding(id))
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::total_order::TotalOrderMessage<E>> {
        match kind {
            AdversaryKind::Silent => NamedAdversary::new(kind.name(), SilentAdversary),
            // The strongest attack the family's message language admits: a
            // split-brain schedule equivocating the embedded consensus votes of a
            // Byzantine-witnessed event between the two halves of the correct
            // nodes (see [`total_order_split_brain`]). At `n = 3f` it splits the
            // chain; inside the bound the correct majority heals the split.
            AdversaryKind::SplitVote | AdversaryKind::Worst => NamedAdversary::new(
                "split-brain",
                total_order_split_brain(self.plan.events.first().map(|(_, _, e)| e.clone())),
            ),
            // The remaining scripted strategies cannot fabricate arbitrary event
            // payloads; protocol-specific attacks (e.g. MembershipFlapper) go
            // through `build_with_adversary`.
            _ => NamedAdversary::new("silent", SilentAdversary),
        }
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<crate::total_order::TotalOrderMessage<E>>>> {
        Some(Box::new(self.clone()))
    }

    fn stop_condition(&self) -> StopCondition {
        StopCondition::FixedRounds(self.plan.total_rounds)
    }

    fn joiner(&self, _ctx: &BuildContext) -> Box<dyn FnMut(NodeId) -> TotalOrderNode<E>> {
        Box::new(TotalOrderNode::joining)
    }

    fn before_round(&mut self, round: u64, nodes: &mut [TotalOrderNode<E>]) {
        for (at, founder, payload) in &self.plan.events {
            if *at == round {
                let submitter = self.founders.get(*founder).copied();
                if let Some(node) = nodes
                    .iter_mut()
                    .find(|n| Some(Protocol::id(*n)) == submitter)
                {
                    node.submit_event(payload.clone());
                }
            }
        }
        for (at, founder) in &self.plan.leaves {
            if *at == round {
                let leaver = self.founders.get(*founder).copied();
                if let Some(node) = nodes.iter_mut().find(|n| Some(Protocol::id(*n)) == leaver) {
                    node.announce_leave();
                }
            }
        }
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[TotalOrderNode<E>], report: &mut RunReport) {
        let leavers = self.leaver_ids();
        let lengths: Vec<(NodeId, usize)> =
            nodes.iter().map(|n| (n.id(), n.chain().len())).collect();
        let chains: Vec<Vec<_>> = nodes
            .iter()
            .filter(|n| !leavers.contains(&n.id()))
            .map(|n| n.chain().to_vec())
            .collect();
        report.chain = Some(ChainSection {
            lengths,
            prefix_ok: chains_agree(&chains),
        });
    }
}

/// The total-ordering vocabulary. Event payloads of type `E` cannot be
/// synthesised generically, so the vocabulary *replays* the plan's own event
/// payloads under Byzantine identities — mis-tagged rounds, equivocated
/// embedded-consensus votes, spurious `Absent` departures — which is exactly the
/// material a membership-tracking total order has to survive.
impl<E: Opinion + 'static> PayloadVocab<crate::total_order::TotalOrderMessage<E>>
    for TotalOrderFactory<E>
{
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<crate::total_order::TotalOrderMessage<E>> {
        use crate::total_order::TotalOrderMessage as Tm;
        let mut out = vec![Tm::Present, Tm::Ack(scene.round)];
        if let Some((_, _, event)) = self.plan.events.first() {
            out.push(Tm::Event(scene.round, event.clone()));
        }
        out
    }

    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<crate::total_order::TotalOrderMessage<E>> {
        use crate::early_consensus::ParallelMessage as Pm;
        use crate::total_order::TotalOrderMessage as Tm;
        let instance = scene.byzantine_ids.first().map(|b| b.raw()).unwrap_or(0);
        let mut out = vec![Tm::Absent];
        if let Some((_, _, event)) = self.plan.events.first() {
            // Equivocate the embedded consensus instance of the current round
            // between a real event value and ⊥, and re-witness the event under a
            // stale round tag.
            out.push(Tm::Instance(
                scene.round,
                Pm::Prefer(instance, Some(event.clone())),
            ));
            out.push(Tm::Instance(scene.round, Pm::Prefer(instance, None)));
            out.push(Tm::Event(scene.round.saturating_sub(1), event.clone()));
        }
        out
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<crate::total_order::TotalOrderMessage<E>> {
        use crate::early_consensus::ParallelMessage as Pm;
        use crate::total_order::TotalOrderMessage as Tm;
        let mut out = vec![
            Tm::Ack(scene.round + 997),
            Tm::Instance(scene.round, Pm::NoPreference(scene.ghost_id(0).raw())),
        ];
        if let Some((_, _, event)) = self.plan.events.first() {
            out.push(Tm::Event(scene.round + 50, event.clone()));
        }
        out
    }
}

/// The split-brain adversary for the total-order family: the sharpest attack its
/// message language admits, and the machine behind the family's `n = 3f` boundary
/// demonstration.
///
/// Each Byzantine identity runs the same deterministic schedule every round `t`:
///
/// * `present` to everyone (membership), and `Instance(t, Init)` to everyone so the
///   identity is counted into every embedded instance's `n_v` before the sender set
///   freezes (the `Init` lands on the instance's echo round);
/// * a fabricated `Event(t, e)` witnessed by the Byzantine identity — but only to
///   the first half **A** of the correct nodes, so only A holds the input pair;
/// * the equivocated vote ladder for that fabricated instance, each message timed
///   to land exactly on the inner round that tallies its kind (input votes on local
///   round 4, prefer on 5, strong-prefer on 6): value-side votes to A, `⊥`-side
///   votes to the other half **B**.
///
/// At `n = 3f` the `2n_v/3` quorum at an A-node is reachable with the `f` Byzantine
/// votes on top of A's own, while B simultaneously reaches a `⊥` quorum — the two
/// halves decide differently in the very first phase and the chains diverge. Inside
/// the bound (`n > 3f`) neither side can reach a quorum without a majority of the
/// correct nodes, the plurality rule pulls every straggler onto the common value,
/// and agreement holds — which is exactly the tightness statement of Theorem 6.
pub fn total_order_split_brain<E: Opinion>(
    event: Option<E>,
) -> impl Adversary<crate::total_order::TotalOrderMessage<E>> {
    FnAdversary::new(
        move |view: &AdversaryView<'_, crate::total_order::TotalOrderMessage<E>>| {
            use crate::early_consensus::ParallelMessage as Pm;
            use crate::total_order::TotalOrderMessage as Tm;
            let Some(event) = event.clone() else {
                return Vec::new();
            };
            let t = view.round;
            let half = view.correct_ids.len().div_ceil(2);
            let (side_a, side_b) = view.correct_ids.split_at(half);
            let mut out = Vec::new();
            for &actor in view.byzantine_ids {
                let instance = actor.raw();
                for &to in view.correct_ids {
                    out.push(Directed::new(actor, to, Tm::Present));
                    out.push(Directed::new(actor, to, Tm::Instance(t, Pm::Init)));
                }
                for &to in side_a {
                    out.push(Directed::new(actor, to, Tm::Event(t, event.clone())));
                    if let Some(target) = t.checked_sub(2).filter(|r| *r >= 1) {
                        out.push(Directed::new(
                            actor,
                            to,
                            Tm::Instance(target, Pm::Input(instance, event.clone())),
                        ));
                    }
                    if let Some(target) = t.checked_sub(3).filter(|r| *r >= 1) {
                        out.push(Directed::new(
                            actor,
                            to,
                            Tm::Instance(target, Pm::Prefer(instance, Some(event.clone()))),
                        ));
                    }
                    if let Some(target) = t.checked_sub(4).filter(|r| *r >= 1) {
                        out.push(Directed::new(
                            actor,
                            to,
                            Tm::Instance(target, Pm::StrongPrefer(instance, Some(event.clone()))),
                        ));
                    }
                }
                for &to in side_b {
                    if let Some(target) = t.checked_sub(3).filter(|r| *r >= 1) {
                        out.push(Directed::new(
                            actor,
                            to,
                            Tm::Instance(target, Pm::Prefer(instance, None)),
                        ));
                    }
                    if let Some(target) = t.checked_sub(4).filter(|r| *r >= 1) {
                        out.push(Directed::new(
                            actor,
                            to,
                            Tm::Instance(target, Pm::StrongPrefer(instance, None)),
                        ));
                    }
                }
            }
            out
        },
    )
}

// ---------------------------------------------------------------------------
// Fluent sugar
// ---------------------------------------------------------------------------

/// Protocol-specific conveniences on the generic [`ScenarioBuilder`]: each method is
/// `.build(<factory>)` with the factory spelled inline.
pub trait ScenarioExt: Sized {
    /// Consensus with one input per correct node.
    fn consensus(self, inputs: &[u64]) -> Harness<ConsensusFactory>;
    /// Reliable broadcast with a correct designated sender broadcasting `value`.
    fn broadcast(self, value: u64) -> Harness<BroadcastFactory>;
    /// Reliable broadcast with an equivocating Byzantine designated sender.
    fn broadcast_equivocating(self, value_a: u64, value_b: u64) -> Harness<BroadcastFactory>;
    /// The standalone rotor-coordinator.
    fn rotor(self) -> Harness<RotorFactory>;
    /// Single-shot approximate agreement on the given correct inputs.
    fn approx(self, inputs: &[f64]) -> Harness<ApproxFactory>;
    /// Iterated approximate agreement over `iterations` halving rounds.
    fn iterated_approx(self, inputs: &[f64], iterations: u64) -> Harness<IteratedApproxFactory>;
    /// Parallel consensus over shared `(instance, value)` pairs.
    fn parallel_consensus(self, pairs: &[(u64, u64)]) -> Harness<ParallelConsensusFactory>;
    /// Dynamic total ordering driven by an input plan.
    fn total_order(self, plan: TotalOrderPlan<u64>) -> Harness<TotalOrderFactory<u64>>;
}

impl ScenarioExt for ScenarioBuilder {
    fn consensus(self, inputs: &[u64]) -> Harness<ConsensusFactory> {
        self.build(ConsensusFactory::new(inputs.to_vec()))
    }

    fn broadcast(self, value: u64) -> Harness<BroadcastFactory> {
        self.build(BroadcastFactory::correct_source(value))
    }

    fn broadcast_equivocating(self, value_a: u64, value_b: u64) -> Harness<BroadcastFactory> {
        self.build(BroadcastFactory::equivocating_source(value_a, value_b))
    }

    fn rotor(self) -> Harness<RotorFactory> {
        self.build(RotorFactory)
    }

    fn approx(self, inputs: &[f64]) -> Harness<ApproxFactory> {
        self.build(ApproxFactory::new(inputs.to_vec()))
    }

    fn iterated_approx(self, inputs: &[f64], iterations: u64) -> Harness<IteratedApproxFactory> {
        self.build(IteratedApproxFactory::new(inputs.to_vec(), iterations))
    }

    fn parallel_consensus(self, pairs: &[(u64, u64)]) -> Harness<ParallelConsensusFactory> {
        self.build(ParallelConsensusFactory::new(pairs.to_vec()))
    }

    fn total_order(self, plan: TotalOrderPlan<u64>) -> Harness<TotalOrderFactory<u64>> {
        self.build(TotalOrderFactory::new(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_factory_reports_agreement_and_validity() {
        let inputs = [0u64, 1, 0, 1, 0, 1, 0];
        for kind in [
            AdversaryKind::Silent,
            AdversaryKind::AnnounceThenSilent,
            AdversaryKind::PartialAnnounce,
            AdversaryKind::SplitVote,
        ] {
            let report = Simulation::scenario()
                .correct(7)
                .byzantine(2)
                .seed(3)
                .adversary(kind)
                .consensus(&inputs)
                .run()
                .unwrap();
            assert!(report.completed(), "consensus finished under {kind:?}");
            let section = report.consensus.expect("consensus section");
            assert!(section.agreement, "agreement under {kind:?}");
            assert!(section.validity, "validity under {kind:?}");
            assert!(section.undecided.is_empty());
            assert!(report.rounds > 0 && report.messages.correct > 0);
        }
    }

    #[test]
    fn broadcast_factories_report_consistency() {
        let correct = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(5)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .broadcast(42)
            .run()
            .unwrap();
        let section = correct.broadcast.expect("broadcast section");
        assert!(section.consistent);
        assert!(section.source_correct);
        assert!(section
            .accepted
            .iter()
            .all(|set| set.values.iter().map(|&(m, _)| m).eq([42u64])));

        let equivocating = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(5)
            .broadcast_equivocating(1, 2)
            .run()
            .unwrap();
        let section = equivocating.broadcast.expect("broadcast section");
        assert_eq!(equivocating.adversary, "equivocating-source");
        assert!(!section.source_correct);
        assert!(
            section.consistent,
            "equivocation must be exposed consistently"
        );
    }

    #[test]
    fn rotor_factory_finds_a_good_round() {
        let report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(7)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .rotor()
            .run()
            .unwrap();
        let section = report.rotor.expect("rotor section");
        assert!(section.good_round);
        assert!(section.selected >= 1);
    }

    #[test]
    fn approx_factory_reports_contraction() {
        let inputs: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let report = Simulation::scenario()
            .correct(10)
            .byzantine(3)
            .seed(9)
            .adversary(AdversaryKind::Worst)
            .approx(&inputs)
            .run()
            .unwrap();
        assert_eq!(report.adversary, "extreme-outliers");
        let section = report.approx.expect("approx section");
        assert!(section.outputs_in_range);
        assert!(section.contraction < 1.0);

        let spreads = Simulation::scenario()
            .correct(10)
            .byzantine(3)
            .seed(9)
            .iterated_approx(&inputs, 5)
            .run()
            .unwrap()
            .spreads
            .expect("spread section")
            .per_iteration;
        assert_eq!(spreads.len(), 5);
        assert!(
            spreads.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "spread is non-increasing"
        );
        assert!(spreads.last().unwrap() < &10.0);
    }

    #[test]
    fn parallel_factory_rejects_ghost_pairs() {
        let pairs: Vec<(u64, u64)> = (0..4).map(|i| (i, 100 + i)).collect();
        let report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(11)
            .max_rounds(500)
            .adversary(AdversaryKind::Worst)
            .build(
                ParallelConsensusFactory::new(pairs.clone())
                    .with_ghost_pairs(vec![(1_000_001, 13), (1_000_002, 17)]),
            )
            .run()
            .unwrap();
        assert_eq!(report.adversary, "ghost-pair-injector");
        let section = report.parallel.expect("parallel section");
        assert!(section.agreement);
        for decision in &section.decisions {
            assert!(
                decision.pairs.iter().all(|&(id, _)| id < 1_000_000),
                "ghost pair output"
            );
            for pair in &pairs {
                assert!(
                    decision.pairs.contains(pair),
                    "a unanimous real pair was dropped"
                );
            }
        }
    }

    #[test]
    fn total_order_factory_runs_events_under_churn() {
        use uba_simnet::{ChurnEvent, ChurnSchedule};
        let joiner = NodeId::new(999_999);
        let mut plan = TotalOrderPlan::rounds(60);
        for round in 1..=50u64 {
            plan = plan.event(round, (round % 3) as usize, round);
        }
        let plan = plan.leave(40, 3);
        let churn = ChurnSchedule::empty().with(13, ChurnEvent::JoinCorrect(joiner));
        let report = Simulation::scenario()
            .correct(4)
            .byzantine(0)
            .seed(13)
            .churn(churn)
            .total_order(plan)
            .run()
            .unwrap();
        let section = report.chain.expect("chain section");
        assert!(section.prefix_ok, "chain-prefix violated");
        assert!(
            section.lengths.iter().any(|&(id, _)| id == joiner),
            "joiner still present"
        );
        assert!(
            section.lengths.iter().any(|&(_, len)| len > 0),
            "events were finalised"
        );
        assert_eq!(section.lengths.len(), 5, "4 founders + 1 joiner");
    }

    #[test]
    fn run_report_round_trips_through_serde_json_shapes() {
        let inputs = [0u64, 1, 0, 1, 0];
        let report = Simulation::scenario()
            .correct(5)
            .byzantine(1)
            .seed(21)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .unwrap();
        let value = serde::Serialize::to_value(&report);
        let back: RunReport = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn cap_exhaustion_is_a_status_not_an_error() {
        // n = 3f with a split-vote adversary may never decide; the report must say
        // so instead of erroring.
        let inputs = [0u64, 1, 0, 1];
        let report = Simulation::scenario()
            .correct(4)
            .byzantine(2)
            .seed(23)
            .max_rounds(60)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .unwrap();
        match report.status {
            RunStatus::Completed { .. } => {
                assert!(report.consensus.unwrap().undecided.is_empty());
            }
            RunStatus::MaxRoundsExceeded { limit } => {
                assert_eq!(limit, 60);
                assert_eq!(report.rounds, 60);
            }
        }
    }
}
