//! Berman–Garay–Perry phase-king consensus with known `n`, `f` and consecutive
//! identifiers.
//!
//! This is the classic `O(f)`-round, polynomial-message consensus the paper's
//! Algorithm 3 generalises. It runs `f + 1` phases of three rounds each; phase `k` is
//! presided over by the node with the `k`-th smallest identifier (the *king*), which
//! is why consecutive (or at least globally known) identifiers and a known `f` are
//! required — exactly the knowledge the id-only model removes.
//!
//! Structure of a phase (the `n > 3f` variant with an explicit proposal round):
//!
//! 1. broadcast the current value; a value seen at least `n − f` times becomes the
//!    node's *proposal*;
//! 2. broadcast the proposal; adopt a proposal seen at least `f + 1` times, and call
//!    it *strong* if seen at least `n − f` times;
//! 3. the king broadcasts its value; every node whose proposal was not strong adopts
//!    the king's value. After phase `f + 1`, output the current value.

use std::collections::BTreeMap;

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

/// Wire messages of phase-king.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseKingMessage<V> {
    /// Round-1 value broadcast.
    Value(V),
    /// Round-2 proposal broadcast.
    Proposal(V),
    /// Round-3 king broadcast.
    King(V),
}

/// A node running phase-king consensus. It must be constructed with the full sorted
/// list of participant identifiers (that is the knowledge the classic model grants).
#[derive(Clone, Debug)]
pub struct PhaseKing<V> {
    id: NodeId,
    /// All participant identifiers, sorted; index `k − 1` is the king of phase `k`.
    participants: Vec<NodeId>,
    f: usize,
    value: V,
    input: V,
    phase: usize,
    strong: bool,
    decided: Option<V>,
    decided_round: u64,
}

impl<V: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug> PhaseKing<V> {
    /// Creates a node. `participants` must be identical at every correct node.
    pub fn new(id: NodeId, mut participants: Vec<NodeId>, f: usize, input: V) -> Self {
        participants.sort_unstable();
        PhaseKing {
            id,
            participants,
            f,
            value: input.clone(),
            input,
            phase: 1,
            strong: false,
            decided: None,
            decided_round: 0,
        }
    }

    /// The node's original input.
    pub fn input(&self) -> &V {
        &self.input
    }

    /// The round in which the node decided (0 if undecided).
    pub fn decided_round(&self) -> u64 {
        self.decided_round
    }

    fn n(&self) -> usize {
        self.participants.len()
    }

    fn king_of_phase(&self, phase: usize) -> NodeId {
        self.participants[(phase - 1) % self.participants.len()]
    }

    fn count<'a>(inbox: impl Iterator<Item = &'a V>) -> BTreeMap<&'a V, usize>
    where
        V: 'a,
    {
        let mut counts = BTreeMap::new();
        for v in inbox {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }
}

impl<V: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug> Recoverable for PhaseKing<V> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<V: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug> Protocol for PhaseKing<V> {
    type Payload = PhaseKingMessage<V>;
    type Output = V;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<PhaseKingMessage<V>>],
    ) -> Vec<Outgoing<PhaseKingMessage<V>>> {
        if self.decided.is_some() {
            return Vec::new();
        }
        let n = self.n();
        let f = self.f;
        // Round schedule: three rounds per phase, starting at round 1.
        let phase = ((ctx.round - 1) / 3 + 1) as usize;
        let step = (ctx.round - 1) % 3;
        self.phase = phase;

        match step {
            // Round 1 of the phase: broadcast the value. (The evaluation of the
            // previous phase's king round happens first, on this round's inbox.)
            0 => {
                if phase > 1 {
                    let king = self.king_of_phase(phase - 1);
                    let king_value = inbox.iter().find_map(|e| match e.payload() {
                        PhaseKingMessage::King(v) if e.from == king => Some(v.clone()),
                        _ => None,
                    });
                    if !self.strong {
                        if let Some(v) = king_value {
                            self.value = v;
                        }
                    }
                    if phase > f + 1 {
                        self.decided = Some(self.value.clone());
                        self.decided_round = ctx.round;
                        return Vec::new();
                    }
                }
                vec![Outgoing::broadcast(PhaseKingMessage::Value(
                    self.value.clone(),
                ))]
            }
            // Round 2: evaluate values, broadcast a proposal if one value reached n − f.
            1 => {
                let values: Vec<&V> = inbox
                    .iter()
                    .filter_map(|e| match e.payload() {
                        PhaseKingMessage::Value(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                let counts = Self::count(values.into_iter());
                let proposal = counts
                    .iter()
                    .find(|(_, &c)| c >= n - f)
                    .map(|(v, _)| (*v).clone());
                match proposal {
                    Some(v) => vec![Outgoing::broadcast(PhaseKingMessage::Proposal(v))],
                    None => Vec::new(),
                }
            }
            // Round 3: evaluate proposals; the king broadcasts its value.
            _ => {
                let proposals: Vec<&V> = inbox
                    .iter()
                    .filter_map(|e| match e.payload() {
                        PhaseKingMessage::Proposal(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                let counts = Self::count(proposals.into_iter());
                self.strong = false;
                if let Some((v, &c)) = counts.iter().max_by_key(|(_, &c)| c) {
                    if c > f {
                        self.value = (*v).clone();
                    }
                    if c >= n - f {
                        self.strong = true;
                    }
                }
                if self.king_of_phase(phase) == self.id {
                    vec![Outgoing::broadcast(PhaseKingMessage::King(
                        self.value.clone(),
                    ))]
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn output(&self) -> Option<V> {
        self.decided.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    fn run(inputs: &[u64], byzantine: usize) -> Vec<u64> {
        let n = inputs.len() + byzantine;
        let f = byzantine;
        let ids = IdSpace::Consecutive.generate(n, 0);
        let nodes: Vec<_> = ids[..inputs.len()]
            .iter()
            .zip(inputs)
            .map(|(&id, &x)| PhaseKing::new(id, ids.clone(), f, x))
            .collect();
        let byz = ids[inputs.len()..].to_vec();
        let byz_clone = byz.clone();
        // Byzantine nodes split their value votes.
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, PhaseKingMessage<u64>>| {
            let mut out = Vec::new();
            for (b, &from) in byz_clone.iter().enumerate() {
                for (i, &to) in view.correct_ids.iter().enumerate() {
                    let v = ((i + b) % 2) as u64;
                    let payload = match (view.round - 1) % 3 {
                        0 => PhaseKingMessage::Value(v),
                        1 => PhaseKingMessage::Proposal(v),
                        _ => PhaseKingMessage::King(v),
                    };
                    out.push(Directed::new(from, to, payload));
                }
            }
            out
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine.run_to_termination(200).unwrap();
        engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect()
    }

    #[test]
    fn unanimous_inputs_are_decided() {
        let out = run(&[1; 7], 2);
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn split_inputs_reach_agreement() {
        let out = run(&[0, 1, 0, 1, 0, 1, 1], 2);
        assert!(out.windows(2).all(|w| w[0] == w[1]), "agreement: {out:?}");
        assert!(out[0] == 0 || out[0] == 1);
    }

    #[test]
    fn fault_free_run_decides_quickly() {
        let ids = IdSpace::Consecutive.generate(4, 0);
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| PhaseKing::new(id, ids.clone(), 1, id.raw() % 2))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_termination(50).unwrap();
        // f = 1 → 2 phases of 3 rounds plus the final evaluation round.
        assert!(engine.round() <= 8);
        let outputs: Vec<u64> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }
}
