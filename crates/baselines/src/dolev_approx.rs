//! Dolev et al. approximate agreement with a known `f`.
//!
//! The classic single-round step: broadcast the value, collect `n` values (missing
//! ones are ignored), discard exactly the `f` smallest and `f` largest, and output the
//! midpoint of the remainder. Identical in spirit to the paper's Algorithm 4, except
//! that the trim width is the *known* `f` rather than the locally derived `⌊n_v/3⌋`.

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

/// Fixed-point value re-exported from `uba-core`'s value module would create a
/// dependency cycle, so the baseline simply works on integer-scaled values (micro
/// units), which is what the experiment harness feeds both implementations.
pub type Micro = i64;

/// A node running one round of Dolev-style approximate agreement.
#[derive(Clone, Debug)]
pub struct DolevApprox {
    id: NodeId,
    f: usize,
    input: Micro,
    output: Option<Micro>,
}

impl DolevApprox {
    /// Creates a node with the known failure bound `f` and its input value.
    pub fn new(id: NodeId, f: usize, input: Micro) -> Self {
        DolevApprox {
            id,
            f,
            input,
            output: None,
        }
    }

    /// The node's input.
    pub fn input(&self) -> Micro {
        self.input
    }
}

impl Recoverable for DolevApprox {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl Protocol for DolevApprox {
    type Payload = Micro;
    type Output = Micro;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<Micro>]) -> Vec<Outgoing<Micro>> {
        match ctx.round {
            1 => vec![Outgoing::broadcast(self.input)],
            2 => {
                let mut values: Vec<Micro> = Vec::new();
                let mut seen: Vec<NodeId> = Vec::new();
                for envelope in inbox {
                    if !seen.contains(&envelope.from) {
                        seen.push(envelope.from);
                        values.push(*envelope.payload());
                    }
                }
                values.sort_unstable();
                if values.len() > 2 * self.f {
                    let kept = &values[self.f..values.len() - self.f];
                    self.output = Some((kept[0] + kept[kept.len() - 1]).div_euclid(2));
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn output(&self) -> Option<Micro> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    #[test]
    fn outputs_lie_within_correct_range_despite_outliers() {
        let ids = IdSpace::Consecutive.generate(9, 0);
        let f = 2;
        let inputs: Vec<Micro> = vec![10, 12, 14, 16, 18, 20, 22];
        let nodes: Vec<_> = ids[..7]
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| DolevApprox::new(id, f, x))
            .collect();
        let byz = vec![ids[7], ids[8]];
        let byz_clone = byz.clone();
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Micro>| {
            if view.round != 1 {
                return vec![];
            }
            let mut out = Vec::new();
            for (b, &from) in byz_clone.iter().enumerate() {
                for (i, &to) in view.correct_ids.iter().enumerate() {
                    let v = if (i + b) % 2 == 0 {
                        -1_000_000
                    } else {
                        1_000_000
                    };
                    out.push(Directed::new(from, to, v));
                }
            }
            out
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine.run_to_output(4).unwrap();
        for (_, out) in engine.outputs() {
            let v = out.unwrap();
            assert!(
                (10..=22).contains(&v),
                "output {v} escaped the correct range"
            );
        }
    }

    #[test]
    fn fault_free_outputs_contract_the_range() {
        let ids = IdSpace::Consecutive.generate(5, 0);
        let nodes: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| DolevApprox::new(id, 1, (i as Micro) * 100))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_output(4).unwrap();
        let outputs: Vec<Micro> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        let lo = *outputs.iter().min().unwrap();
        let hi = *outputs.iter().max().unwrap();
        assert!(lo >= 0 && hi <= 400);
        assert!(hi - lo < 400);
    }

    #[test]
    fn accessor_reports_input() {
        assert_eq!(DolevApprox::new(NodeId::new(1), 1, 55).input(), 55);
    }
}
