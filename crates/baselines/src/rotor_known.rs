//! The trivial rotating coordinator with known `f` and consecutive identifiers.
//!
//! When `f` is known and identifiers are `0, 1, 2, …`, ensuring that some coordinator
//! is correct is trivial: rotate through the nodes with identifiers `0 … f`. One of
//! those `f + 1` nodes must be correct, no communication is needed to agree on the
//! schedule, and the whole thing takes exactly `f + 1` rounds. This is the baseline
//! against which the cost of the id-only rotor-coordinator (Algorithm 2) is measured
//! in experiment E3.

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

/// Wire message: the coordinator of the round distributes its opinion.
pub type KnownRotorMessage = u64;

/// A node rotating through the known coordinators `0 … f`.
#[derive(Clone, Debug)]
pub struct KnownRotor {
    id: NodeId,
    f: usize,
    opinion: u64,
    /// Opinion accepted from each round's coordinator.
    accepted: Vec<(NodeId, Option<u64>)>,
    done: bool,
}

impl KnownRotor {
    /// Creates a node with the known failure bound and the opinion it would
    /// distribute as a coordinator.
    pub fn new(id: NodeId, f: usize, opinion: u64) -> Self {
        KnownRotor {
            id,
            f,
            opinion,
            accepted: Vec::new(),
            done: false,
        }
    }

    /// The `(coordinator, accepted opinion)` pairs, one per round.
    pub fn accepted(&self) -> &[(NodeId, Option<u64>)] {
        &self.accepted
    }
}

impl Recoverable for KnownRotor {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl Protocol for KnownRotor {
    type Payload = KnownRotorMessage;
    type Output = Vec<(NodeId, Option<u64>)>;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
        // The coordinator of round r is the node with identifier r − 1; its opinion is
        // received (and recorded) in round r + 1.
        if ctx.round >= 2 {
            let previous = NodeId::new(ctx.round - 2);
            let opinion = inbox
                .iter()
                .find(|e| e.from == previous)
                .map(|e| *e.payload());
            self.accepted.push((previous, opinion));
            if self.accepted.len() > self.f {
                self.done = true;
                return Vec::new();
            }
        }
        if self.id == NodeId::new(ctx.round - 1) {
            vec![Outgoing::broadcast(self.opinion)]
        } else {
            Vec::new()
        }
    }

    fn output(&self) -> Option<Vec<(NodeId, Option<u64>)>> {
        self.done.then(|| self.accepted.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{IdSpace, SyncEngine};

    #[test]
    fn rotates_through_f_plus_one_coordinators() {
        let ids = IdSpace::Consecutive.generate(7, 0);
        let f = 2;
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| KnownRotor::new(id, f, id.raw() * 10))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_termination(20).unwrap();
        assert_eq!(
            engine.round(),
            (f + 2) as u64,
            "terminates right after f + 1 coordinators"
        );
        for (_, output) in engine.outputs() {
            let accepted = output.unwrap();
            assert_eq!(accepted.len(), f + 1);
            // Every coordinator was correct here, so every opinion was received.
            for (i, (coordinator, opinion)) in accepted.iter().enumerate() {
                assert_eq!(*coordinator, NodeId::new(i as u64));
                assert_eq!(*opinion, Some(i as u64 * 10));
            }
        }
    }

    #[test]
    fn silent_byzantine_coordinator_yields_no_opinion_but_one_good_round_remains() {
        let ids = IdSpace::Consecutive.generate(5, 0);
        let f = 1;
        // Node 0 is Byzantine (silent); nodes 1–4 are correct.
        let nodes: Vec<_> = ids[1..]
            .iter()
            .map(|&id| KnownRotor::new(id, f, id.raw()))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![ids[0]]);
        engine.run_to_termination(20).unwrap();
        for (_, output) in engine.outputs() {
            let accepted = output.unwrap();
            assert_eq!(
                accepted[0].1, None,
                "the Byzantine coordinator sent nothing"
            );
            assert_eq!(
                accepted[1].1,
                Some(1),
                "the correct coordinator's opinion is accepted"
            );
        }
    }
}
