//! Srikanth–Toueg authenticated broadcast with known `n` and `f`.
//!
//! This is the classic reliable-broadcast simulation the paper's Algorithm 1
//! generalises: the thresholds are the absolute `f + 1` ("at least one correct node
//! vouches") and `2f + 1` ("a quorum of correct nodes vouches") instead of the local
//! `n_v/3` and `2n_v/3`. It needs `n > 3f` and, crucially, needs every node to be
//! initialised with `f`.

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

/// Wire messages of the Srikanth–Toueg broadcast.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StMessage<M> {
    /// The designated sender's initial broadcast.
    Init(M),
    /// An echo vouching for the sender's message.
    Echo(M),
}

/// A node running the Srikanth–Toueg broadcast for one designated sender.
#[derive(Clone, Debug)]
pub struct StBroadcast<M> {
    id: NodeId,
    source: NodeId,
    f: usize,
    input: Option<M>,
    echoed: BTreeSet<M>,
    accepted: Vec<(M, u64)>,
    echo_votes: BTreeMap<M, BTreeSet<NodeId>>,
}

impl<M: Clone + Ord + std::fmt::Debug> StBroadcast<M> {
    /// Creates the designated sender, which knows the failure bound `f`.
    pub fn sender(id: NodeId, f: usize, message: M) -> Self {
        StBroadcast {
            id,
            source: id,
            f,
            input: Some(message),
            echoed: BTreeSet::new(),
            accepted: Vec::new(),
            echo_votes: BTreeMap::new(),
        }
    }

    /// Creates a receiver that waits for the designated sender `source`.
    pub fn receiver(id: NodeId, source: NodeId, f: usize) -> Self {
        StBroadcast {
            id,
            source,
            f,
            input: None,
            echoed: BTreeSet::new(),
            accepted: Vec::new(),
            echo_votes: BTreeMap::new(),
        }
    }

    /// The values accepted so far, with the round each was accepted in.
    pub fn accepted(&self) -> &[(M, u64)] {
        &self.accepted
    }
}

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> Recoverable for StBroadcast<M> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> Protocol for StBroadcast<M> {
    type Payload = StMessage<M>;
    type Output = M;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<StMessage<M>>],
    ) -> Vec<Outgoing<StMessage<M>>> {
        let mut out = Vec::new();
        // Cumulative distinct-sender echo counting (the classic formulation).
        for envelope in inbox {
            match envelope.payload() {
                StMessage::Init(m) if envelope.from == self.source => {
                    if self.echoed.insert(m.clone()) {
                        out.push(Outgoing::broadcast(StMessage::Echo(m.clone())));
                    }
                }
                StMessage::Echo(m) => {
                    self.echo_votes
                        .entry(m.clone())
                        .or_default()
                        .insert(envelope.from);
                }
                StMessage::Init(_) => {}
            }
        }
        if ctx.round == 1 {
            if let Some(m) = &self.input {
                out.push(Outgoing::broadcast(StMessage::Init(m.clone())));
            }
        }
        let mut newly_echoed = Vec::new();
        for (m, votes) in &self.echo_votes {
            // Relay rule: f + 1 echoes prove a correct node vouched for m.
            if votes.len() > self.f && !self.echoed.contains(m) {
                newly_echoed.push(m.clone());
            }
            // Accept rule: 2f + 1 echoes.
            if votes.len() > 2 * self.f && !self.accepted.iter().any(|(a, _)| a == m) {
                self.accepted.push((m.clone(), ctx.round));
            }
        }
        for m in newly_echoed {
            self.echoed.insert(m.clone());
            out.push(Outgoing::broadcast(StMessage::Echo(m)));
        }
        out
    }

    fn output(&self) -> Option<M> {
        self.accepted.first().map(|(m, _)| m.clone())
    }

    fn terminated(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{IdSpace, SyncEngine};

    #[test]
    fn correct_sender_is_accepted_by_all() {
        let ids = IdSpace::Consecutive.generate(7, 0);
        let f = 2;
        let source = ids[0];
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| {
                if id == source {
                    StBroadcast::sender(id, f, 99u64)
                } else {
                    StBroadcast::receiver(id, source, f)
                }
            })
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_output(10).unwrap();
        for node in engine.nodes() {
            assert_eq!(node.output(), Some(99));
        }
    }

    #[test]
    fn silent_byzantine_sender_is_never_accepted() {
        let ids = IdSpace::Consecutive.generate(7, 0);
        let f = 2;
        let source = ids[6];
        let nodes: Vec<_> = ids[..5]
            .iter()
            .map(|&id| StBroadcast::<u64>::receiver(id, source, f))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![ids[5], ids[6]]);
        engine.run_rounds(15).unwrap();
        assert!(engine.nodes().iter().all(|n| n.output().is_none()));
    }

    #[test]
    fn accepted_values_are_consistent_across_nodes() {
        let ids = IdSpace::Consecutive.generate(4, 0);
        let source = ids[0];
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| {
                if id == source {
                    StBroadcast::sender(id, 1, 7u64)
                } else {
                    StBroadcast::receiver(id, source, 1)
                }
            })
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_rounds(10).unwrap();
        let sets: Vec<Vec<u64>> = engine
            .nodes()
            .iter()
            .map(|n| n.accepted().iter().map(|(m, _)| *m).collect())
            .collect();
        assert!(sets.iter().all(|s| s == &sets[0]));
    }
}
