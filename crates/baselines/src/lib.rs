//! # uba-baselines
//!
//! Classic Byzantine agreement algorithms that **know `n` and `f`**, used as the
//! comparison baselines for the id-only algorithms of `uba-core`:
//!
//! * [`srikanth_toueg`] — the authenticated-broadcast simulation of Srikanth & Toueg
//!   (the algorithm that Algorithm 1 of the paper generalises);
//! * [`phase_king`] — the Berman–Garay–Perry phase-king consensus (the ancestor of
//!   Algorithm 3), with the rotating king made possible by consecutive identifiers;
//! * [`dolev_approx`] — the approximate agreement of Dolev et al. with exact-`f`
//!   trimming (the ancestor of Algorithm 4);
//! * [`rotor_known`] — the trivial rotating coordinator over `f + 1` consecutive
//!   identifiers (what the rotor-coordinator replaces when `f` is unknown).
//!
//! The experiments E5 and E10 run the same workloads through these baselines and the
//! id-only algorithms to verify the paper's claim (Section XII) that dropping the
//! knowledge of `n` and `f` leaves round and message complexity essentially unchanged.
//!
//! All baselines implement [`uba_simnet::Protocol`] and run on the same engine and
//! against the same adversaries as the id-only algorithms, so the comparison is
//! apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dolev_approx;
pub mod factory;
pub mod phase_king;
pub mod rotor_known;
pub mod srikanth_toueg;

pub use dolev_approx::DolevApprox;
pub use factory::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
pub use phase_king::{PhaseKing, PhaseKingMessage};
pub use rotor_known::KnownRotor;
pub use srikanth_toueg::{StBroadcast, StMessage};
