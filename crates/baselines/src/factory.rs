//! [`ProtocolFactory`] implementations for the known-`(n, f)` baselines.
//!
//! These factories let the same [`ScenarioBuilder`](uba_simnet::sim::ScenarioBuilder)
//! that drives the id-only algorithms drive the classic baselines head-to-head: the
//! factory reads `n` and `f` off the [`BuildContext`] (the knowledge the classic
//! model grants every node) and fills the same [`RunReport`] sections as the
//! corresponding id-only factory, so E5/E10-style comparisons are a matter of
//! building the same scenario twice.
//!
//! The baselines assume consecutive identifiers; pair these factories with
//! `IdSpace::Consecutive` (they assert it where the protocol depends on it).
//!
//! Scripted [`AdversaryKind`]s beyond [`AdversaryKind::Silent`] craft id-only
//! protocol payloads that do not exist for the baseline wire formats, so every kind
//! maps to silent faults here — the comparison experiments have always measured the
//! baselines under fail-silent behaviour.

use uba_simnet::adversary::SilentAdversary;
use uba_simnet::sim::{
    approx_section_from_values, consensus_section_from_parts, AdversaryKind, BroadcastSection,
    BuildContext, ConsensusDecision, NamedAdversary, NodeAcceptSet, ProtocolFactory, RotorSection,
    RunReport, StopCondition,
};
use uba_simnet::vocab::{PayloadVocab, VocabScene};
use uba_simnet::{IdSpace, NodeId, Protocol, Recoverable, Snapshotter};

use crate::dolev_approx::{DolevApprox, Micro};
use crate::phase_king::{PhaseKing, PhaseKingMessage};
use crate::rotor_known::{KnownRotor, KnownRotorMessage};
use crate::srikanth_toueg::{StBroadcast, StMessage};

fn silent<P>(kind: AdversaryKind) -> NamedAdversary<P> {
    let name = match kind {
        AdversaryKind::Silent => "silent",
        // The scripted strategies speak id-only wire formats; for the baselines the
        // Byzantine nodes simply fail silent (see module docs).
        _ => "silent (baseline substitution)",
    };
    NamedAdversary::new(name, SilentAdversary)
}

/// Factory for Berman–Garay–Perry phase-king consensus (knows `n`, `f` and the full
/// participant list).
#[derive(Clone, Debug)]
pub struct PhaseKingFactory {
    inputs: Vec<u64>,
}

impl PhaseKingFactory {
    /// One input per correct node, in construction order.
    pub fn new(inputs: impl Into<Vec<u64>>) -> Self {
        PhaseKingFactory {
            inputs: inputs.into(),
        }
    }
}

impl ProtocolFactory for PhaseKingFactory {
    type Node = PhaseKing<u64>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "phase-king".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<PhaseKing<u64>> {
        assert_eq!(
            self.inputs.len(),
            ctx.correct_ids.len(),
            "one input per correct node"
        );
        assert_eq!(
            ctx.spec.id_space,
            IdSpace::Consecutive,
            "phase-king's rotating king needs consecutive identifiers"
        );
        let participants = ctx.all_ids();
        ctx.correct_ids
            .iter()
            .zip(&self.inputs)
            .map(|(&id, &input)| PhaseKing::new(id, participants.clone(), ctx.known_f(), input))
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::phase_king::PhaseKingMessage<u64>> {
        silent(kind)
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<PhaseKingMessage<u64>>>> {
        Some(Box::new(self.clone()))
    }

    fn record(&self, ctx: &BuildContext, nodes: &[PhaseKing<u64>], report: &mut RunReport) {
        let inputs: Vec<(NodeId, u64)> = ctx
            .correct_ids
            .iter()
            .copied()
            .zip(self.inputs.iter().copied())
            .collect();
        let mut decisions = Vec::new();
        let mut undecided = Vec::new();
        for node in nodes {
            match node.output() {
                Some(value) => decisions.push(ConsensusDecision {
                    node: node.id(),
                    value,
                    phase: 0,
                    round: node.decided_round(),
                }),
                None => undecided.push(node.id()),
            }
        }
        report.consensus = Some(consensus_section_from_parts(inputs, decisions, undecided));
    }
}

/// The phase-king wire vocabulary, following the three-round phase schedule
/// (value, proposal, king). The boundary class is the classic split: the two
/// binary values at the phase-appropriate message shape, partitioned across the
/// correct nodes — the attack Berman–Garay–Perry's `n > 3f` requirement guards
/// against, which the silent baseline substitution never exercised.
impl PayloadVocab<PhaseKingMessage<u64>> for PhaseKingFactory {
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<PhaseKingMessage<u64>> {
        let value = self.inputs.first().copied().unwrap_or(0);
        vec![phase_king_message(scene.round, value)]
    }

    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<PhaseKingMessage<u64>> {
        vec![
            phase_king_message(scene.round, 0),
            phase_king_message(scene.round, 1),
        ]
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<PhaseKingMessage<u64>> {
        vec![phase_king_message(scene.round, scene.derived_value(0))]
    }
}

/// The message shape phase-king counts in `round` (three rounds per phase:
/// value, proposal, king).
fn phase_king_message(round: u64, value: u64) -> PhaseKingMessage<u64> {
    match (round.max(1) - 1) % 3 {
        0 => PhaseKingMessage::Value(value),
        1 => PhaseKingMessage::Proposal(value),
        _ => PhaseKingMessage::King(value),
    }
}

/// Factory for Srikanth–Toueg authenticated broadcast (knows `f`); the designated
/// sender is the first correct node.
#[derive(Clone, Debug)]
pub struct StBroadcastFactory {
    value: u64,
}

impl StBroadcastFactory {
    /// The value the (correct) designated sender broadcasts.
    pub fn new(value: u64) -> Self {
        StBroadcastFactory { value }
    }
}

impl ProtocolFactory for StBroadcastFactory {
    type Node = StBroadcast<u64>;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "srikanth-toueg".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<StBroadcast<u64>> {
        let source = *ctx
            .correct_ids
            .first()
            .expect("a correct designated sender");
        ctx.correct_ids
            .iter()
            .map(|&id| {
                if id == source {
                    StBroadcast::sender(id, ctx.known_f(), self.value)
                } else {
                    StBroadcast::receiver(id, source, ctx.known_f())
                }
            })
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::srikanth_toueg::StMessage<u64>> {
        silent(kind)
    }

    fn payload_vocab(&self, _ctx: &BuildContext) -> Option<Box<dyn PayloadVocab<StMessage<u64>>>> {
        Some(Box::new(self.clone()))
    }

    fn stop_condition(&self) -> StopCondition {
        StopCondition::FixedRounds(8)
    }

    fn record(&self, ctx: &BuildContext, nodes: &[StBroadcast<u64>], report: &mut RunReport) {
        let accepted: Vec<NodeAcceptSet> = nodes
            .iter()
            .map(|node| {
                let mut values: Vec<(u64, u64)> = node.accepted().to_vec();
                values.sort_unstable();
                NodeAcceptSet {
                    node: node.id(),
                    values,
                }
            })
            .collect();
        let sets: Vec<Vec<u64>> = accepted
            .iter()
            .map(|set| set.values.iter().map(|&(message, _)| message).collect())
            .collect();
        let consistent = sets.windows(2).all(|w| w[0] == w[1]);
        report.broadcast = Some(BroadcastSection {
            source: *ctx
                .correct_ids
                .first()
                .expect("a correct designated sender"),
            source_correct: true,
            sent: Some(self.value),
            accepted,
            consistent,
        });
    }
}

/// The Srikanth–Toueg wire vocabulary. Unlike the id-only broadcast, the
/// thresholds here are the *absolute* `f + 1` and `2f + 1`, which `f` Byzantine
/// echoes can never reach — the vocabulary exists to demonstrate exactly that:
/// forged echoes stay inert at every `n`, while at `n = 3f` the protocol loses
/// *correctness* instead (the `2f` correct echoers cannot reach `2f + 1`).
impl PayloadVocab<StMessage<u64>> for StBroadcastFactory {
    fn valid(&self, _scene: &VocabScene<'_>) -> Vec<StMessage<u64>> {
        vec![StMessage::Echo(self.value)]
    }

    fn boundary(&self, _scene: &VocabScene<'_>) -> Vec<StMessage<u64>> {
        vec![StMessage::Echo(self.value ^ 0x5A5A)]
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<StMessage<u64>> {
        vec![
            StMessage::Init(scene.derived_value(0)),
            StMessage::Echo(scene.derived_value(1)),
        ]
    }
}

/// Factory for Dolev et al. approximate agreement with exact-`f` trimming; inputs
/// are `f64`s scaled to micro units on the wire, like the id-only comparison feeds.
#[derive(Clone, Debug)]
pub struct DolevApproxFactory {
    inputs: Vec<f64>,
}

impl DolevApproxFactory {
    /// One input per correct node, in construction order.
    pub fn new(inputs: impl Into<Vec<f64>>) -> Self {
        DolevApproxFactory {
            inputs: inputs.into(),
        }
    }

    /// The correct input range in wire (micro) units, `[min, max]`.
    fn input_extremes(&self) -> [Micro; 2] {
        let (lo, hi) = uba_simnet::vocab::input_extremes(&self.inputs);
        [(lo * 1e6) as Micro, (hi * 1e6) as Micro]
    }
}

impl ProtocolFactory for DolevApproxFactory {
    type Node = DolevApprox;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "dolev-approx".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<DolevApprox> {
        assert_eq!(
            self.inputs.len(),
            ctx.correct_ids.len(),
            "one input per correct node"
        );
        ctx.correct_ids
            .iter()
            .zip(&self.inputs)
            .map(|(&id, &input)| DolevApprox::new(id, ctx.known_f(), (input * 1e6) as i64))
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::dolev_approx::Micro> {
        silent(kind)
    }

    fn payload_vocab(&self, _ctx: &BuildContext) -> Option<Box<dyn PayloadVocab<Micro>>> {
        Some(Box::new(self.clone()))
    }

    fn stop_condition(&self) -> StopCondition {
        StopCondition::AllOutput
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[DolevApprox], report: &mut RunReport) {
        let outputs: Vec<f64> = nodes
            .iter()
            .filter_map(|n| n.output())
            .map(|micro| micro as f64 / 1e6)
            .collect();
        report.approx = Some(approx_section_from_values(self.inputs.clone(), outputs));
    }
}

/// The Dolev et al. wire vocabulary (bare micro-unit integers). The boundary
/// class is the *valid-range* extremes, partitioned per recipient: at `n = 3f`
/// each node's exact-`f` trim then anchors its kept window at a different end of
/// the correct range, and with `f = 1` the outputs equal the input extremes —
/// the contraction guarantee fails without a single out-of-range value on the
/// wire.
impl PayloadVocab<Micro> for DolevApproxFactory {
    fn valid(&self, _scene: &VocabScene<'_>) -> Vec<Micro> {
        self.input_extremes().to_vec()
    }

    fn boundary(&self, _scene: &VocabScene<'_>) -> Vec<Micro> {
        self.input_extremes().to_vec()
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<Micro> {
        let wobble = (scene.round % 5) as Micro;
        vec![
            1_000_000_000_000_000 + wobble,
            -1_000_000_000_000_000 - wobble,
        ]
    }
}

/// Factory for the trivial known-`f` rotating coordinator over consecutive
/// identifiers.
#[derive(Clone, Copy, Debug, Default)]
pub struct KnownRotorFactory;

impl ProtocolFactory for KnownRotorFactory {
    type Node = KnownRotor;

    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        Some(Box::new(|node| node.snapshot()))
    }

    fn protocol_name(&self) -> String {
        "known-rotor".into()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<KnownRotor> {
        assert_eq!(
            ctx.spec.id_space,
            IdSpace::Consecutive,
            "the known-f rotor schedule needs consecutive identifiers"
        );
        ctx.correct_ids
            .iter()
            .map(|&id| KnownRotor::new(id, ctx.known_f(), id.raw()))
            .collect()
    }

    fn adversary(
        &self,
        kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<crate::rotor_known::KnownRotorMessage> {
        silent(kind)
    }

    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<KnownRotorMessage>>> {
        Some(Box::new(*self))
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[KnownRotor], report: &mut RunReport) {
        // A good round: some schedule slot in which every correct node accepted the
        // same (necessarily correct) coordinator's opinion.
        let slots = nodes.iter().map(|n| n.accepted().len()).min().unwrap_or(0);
        let good_round = (0..slots).any(|slot| {
            let mut opinions = nodes.iter().map(|n| &n.accepted()[slot]);
            match opinions.next() {
                Some((coordinator, Some(opinion))) => {
                    let (c, o) = (*coordinator, *opinion);
                    nodes.iter().all(|n| n.accepted()[slot] == (c, Some(o)))
                }
                _ => false,
            }
        });
        report.rotor = Some(RotorSection {
            selected: nodes.first().map(|n| n.accepted().len()).unwrap_or(0),
            good_round,
        });
    }
}

/// The known-rotor wire vocabulary (bare `u64` opinions). Provided for
/// completeness and as a *negative control*: the known-`f` schedule only ever
/// consults the coordinators with identifiers `0 … f`, which under the required
/// consecutive layout are all correct, and the network's sender authentication
/// stops a Byzantine identity from speaking as one of them — so no vocabulary
/// payload can move this baseline's oracle, at the boundary or anywhere else.
impl PayloadVocab<KnownRotorMessage> for KnownRotorFactory {
    fn valid(&self, _scene: &VocabScene<'_>) -> Vec<KnownRotorMessage> {
        vec![0]
    }

    fn boundary(&self, _scene: &VocabScene<'_>) -> Vec<KnownRotorMessage> {
        vec![0, u64::MAX]
    }

    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<KnownRotorMessage> {
        vec![scene.derived_value(0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::sim::Simulation;

    fn consecutive(correct: usize, byzantine: usize) -> uba_simnet::sim::ScenarioBuilder {
        Simulation::scenario()
            .correct(correct)
            .byzantine(byzantine)
            .ids(IdSpace::Consecutive)
            .seed(0)
    }

    #[test]
    fn phase_king_factory_reaches_agreement() {
        let inputs = [0u64, 1, 0, 1, 0];
        let report = consecutive(5, 2)
            .max_rounds(300)
            .build(PhaseKingFactory::new(inputs.to_vec()))
            .run()
            .unwrap();
        assert!(report.completed());
        let section = report.consensus.expect("consensus section");
        assert!(section.agreement && section.validity);
        assert!(section.undecided.is_empty());
    }

    #[test]
    fn srikanth_toueg_factory_reports_consistent_acceptance() {
        let report = consecutive(5, 2)
            .build(StBroadcastFactory::new(7))
            .run()
            .unwrap();
        let section = report.broadcast.expect("broadcast section");
        assert!(section.consistent);
        assert!(section
            .accepted
            .iter()
            .all(|set| set.values.iter().map(|&(m, _)| m).eq([7u64])));
    }

    #[test]
    fn dolev_factory_contracts_within_range() {
        let inputs: Vec<f64> = (0..11).map(|i| i as f64 * 9.0).collect();
        let report = consecutive(11, 4)
            .max_rounds(6)
            .build(DolevApproxFactory::new(inputs))
            .run()
            .unwrap();
        let section = report.approx.expect("approx section");
        assert!(section.outputs_in_range);
        assert!(section.contraction <= 0.5 + 1e-9);
    }

    #[test]
    fn known_rotor_factory_terminates_fast_with_a_good_round() {
        let report = consecutive(5, 2)
            .max_rounds(50)
            .build(KnownRotorFactory)
            .run()
            .unwrap();
        assert!(report.completed());
        assert!(report.rounds <= 2 + 2 + 2, "f + 2 rounds for f = 2");
        let section = report.rotor.expect("rotor section");
        assert_eq!(section.selected, 3, "f + 1 coordinators");
        assert!(section.good_round);
    }
}
