//! Oracle for Theorem 4: approximate agreement containment and contraction
//! (Section VIII), plus the iterated-convergence claim used by experiment E6.

use uba_core::Real;

use crate::report::CheckReport;

/// Tolerance used when comparing fixed-point values that went through midpoint
/// rounding (one unit in the last place of [`Real`], i.e. `10^-6`).
const EPS: f64 = 2e-6;

/// Checks a single-shot approximate-agreement run: every correct output lies within
/// the range of correct inputs, and the output range is strictly smaller than the
/// input range whenever the inputs were not already identical.
pub fn check_approx(correct_inputs: &[f64], correct_outputs: &[f64]) -> CheckReport {
    let mut report = CheckReport::new();
    if correct_inputs.is_empty() || correct_outputs.is_empty() {
        return report;
    }
    let imin = fold_min(correct_inputs);
    let imax = fold_max(correct_inputs);
    let omin = fold_min(correct_outputs);
    let omax = fold_max(correct_outputs);

    for (index, &output) in correct_outputs.iter().enumerate() {
        report.expect(
            output >= imin - EPS && output <= imax + EPS,
            "approx/containment",
            || {
                format!(
                    "output #{index} = {output} lies outside the correct input range \
                     [{imin}, {imax}]"
                )
            },
        );
    }

    if imax - imin > EPS {
        report.expect((omax - omin) < (imax - imin), "approx/contraction", || {
            format!(
                "output range {} is not strictly smaller than input range {}",
                omax - omin,
                imax - imin
            )
        });
    }
    report
}

/// Checks the per-iteration spreads of an iterated run: the spread never grows, and
/// every iteration at least halves it (up to fixed-point rounding), which is the
/// convergence rate Theorem 4 gives and Section XII claims is unchanged from the
/// known-`n` algorithm.
pub fn check_convergence(spreads: &[f64]) -> CheckReport {
    let mut report = CheckReport::new();
    for (index, window) in spreads.windows(2).enumerate() {
        let (previous, current) = (window[0], window[1]);
        report.expect(current <= previous + EPS, "approx/monotone-spread", || {
            format!(
                "spread grew from {previous} to {current} at iteration {}",
                index + 1
            )
        });
        report.expect(current <= previous / 2.0 + EPS, "approx/halving", || {
            format!(
                "iteration {} contracted {previous} only to {current}, which is more than half",
                index + 1
            )
        });
    }
    report
}

/// Fixed-point variant of [`check_approx`] for callers that kept everything in
/// [`Real`] (protocol-native) units.
pub fn check_approx_real(correct_inputs: &[Real], correct_outputs: &[Real]) -> CheckReport {
    let inputs: Vec<f64> = correct_inputs.iter().map(|r| r.to_f64()).collect();
    let outputs: Vec<f64> = correct_outputs.iter().map(|r| r.to_f64()).collect();
    check_approx(&inputs, &outputs)
}

fn fold_min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

fn fold_max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contained_and_contracted_outputs_pass() {
        let report = check_approx(&[0.0, 10.0, 20.0], &[8.0, 9.0, 12.0]);
        report.assert_passed("contained outputs");
        assert!(report.checks >= 4);
    }

    #[test]
    fn output_outside_range_violates_containment() {
        let report = check_approx(&[0.0, 10.0], &[5.0, 11.0]);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "approx/containment"));
    }

    #[test]
    fn non_shrinking_range_violates_contraction() {
        let report = check_approx(&[0.0, 10.0], &[0.0, 10.0]);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "approx/contraction"));
    }

    #[test]
    fn identical_inputs_do_not_require_contraction() {
        check_approx(&[5.0, 5.0, 5.0], &[5.0, 5.0]).assert_passed("degenerate input range");
    }

    #[test]
    fn empty_slices_are_trivially_ok() {
        assert!(check_approx(&[], &[1.0]).passed());
        assert!(check_approx(&[1.0], &[]).passed());
        assert_eq!(check_approx(&[], &[]).checks, 0);
    }

    #[test]
    fn halving_convergence_passes() {
        check_convergence(&[16.0, 8.0, 4.0, 1.9, 0.9]).assert_passed("halving sequence");
    }

    #[test]
    fn growing_spread_is_reported() {
        let report = check_convergence(&[4.0, 6.0]);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "approx/monotone-spread"));
    }

    #[test]
    fn slow_contraction_is_reported() {
        let report = check_convergence(&[10.0, 7.0]);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "approx/halving"));
        assert!(!report
            .violations
            .iter()
            .any(|v| v.property == "approx/monotone-spread"));
    }

    #[test]
    fn real_wrapper_matches_f64_behaviour() {
        let inputs = [Real::from_f64(0.0), Real::from_f64(10.0)];
        let good = [Real::from_f64(4.0), Real::from_f64(6.0)];
        check_approx_real(&inputs, &good).assert_passed("real inputs");
        let bad = [Real::from_f64(-1.0)];
        assert!(!check_approx_real(&inputs, &bad).passed());
    }
}
