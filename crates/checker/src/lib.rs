//! # uba-checker
//!
//! Post-hoc **property oracles** for the agreement guarantees proved in
//! Khanchandani & Wattenhofer, *"Byzantine Agreement with Unknown Participants and
//! Failures"* (IPDPS 2021).
//!
//! The protocols in `uba-core` are state machines; the theorems of the paper are
//! statements about what the collection of correct nodes outputs. This crate turns
//! every theorem into an executable check over the observable outcome of an
//! execution, so that integration tests, the Monte-Carlo sweeps and the experiment
//! harness all verify the *same* formal properties instead of re-implementing ad-hoc
//! assertions:
//!
//! | Paper statement | Oracle |
//! |---|---|
//! | Theorem 1 — reliable broadcast: correctness, unforgeability, relay | [`broadcast::check_reliable_broadcast`] |
//! | Theorem 2 — rotor-coordinator: good round, `O(n)` termination | [`rotor::check_rotor`] |
//! | Theorem 3 — consensus: agreement, validity, `O(f)` rounds | [`consensus::check_consensus`] |
//! | Theorem 4 — approximate agreement: containment, contraction | [`approx::check_approx`], [`approx::check_convergence`] |
//! | Theorem 5 — parallel consensus: validity, agreement, termination | [`parallel::check_parallel_consensus`] |
//! | Theorem 6 — total ordering: chain-prefix, chain-growth | [`chain::check_chain_prefix`], [`chain::check_chain_growth`] |
//!
//! Crash/restart executions additionally run the [`recovery`] oracles —
//! cross-restart equivocation, state-prefix consistency and double-consume —
//! whenever a report carries a recovery section (see `docs/RECOVERY.md`).
//!
//! The [`run_report`] module replays the applicable oracles directly over a
//! [`RunReport`](uba_core::sim::RunReport) produced by the `Simulation` driver —
//! [`attach_verdicts`] stamps the verdicts into the report itself, which is how the
//! recorded JSON baselines carry their own verification.
//!
//! Every oracle returns a [`CheckReport`]: the list of concrete [`Violation`]s found
//! (empty on success) together with how many individual checks were evaluated, so a
//! passing report over zero checks is distinguishable from a passing report over
//! thousands.
//!
//! The oracles deliberately take *observations* (decisions, accept records, chains)
//! rather than engine or protocol handles, so they can also be applied to recorded
//! traces, to the known-`(n, f)` baselines in `uba-baselines`, or to any future
//! implementation of the same interfaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod broadcast;
pub mod chain;
pub mod consensus;
pub mod margin;
pub mod parallel;
pub mod recovery;
pub mod report;
pub mod rotor;
pub mod run_report;
pub mod stream;
pub mod trace;

pub use margin::margin_section;
pub use recovery::check_recovery;
pub use report::{CheckReport, Violation};
pub use run_report::{attach_verdicts, check_run_report, report_verdicts};
pub use stream::check_stream;
pub use trace::{attribute_trace, check_zero_copy, TraceAttribution};
