//! Violation reports shared by every oracle.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single concrete violation of a paper property, with enough context to debug the
/// failing execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The property that was violated (e.g. `"reliable-broadcast/correctness"`).
    pub property: String,
    /// Human-readable description of what was observed.
    pub details: String,
}

impl Violation {
    /// Creates a violation record.
    pub fn new(property: impl Into<String>, details: impl Into<String>) -> Self {
        Violation {
            property: property.into(),
            details: details.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.property, self.details)
    }
}

/// The outcome of running one or more oracles over an execution.
///
/// A report *passes* when it contains no violations. `checks` counts the individual
/// property evaluations performed, so that callers can assert both "no violations"
/// and "the oracle actually looked at something".
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Violations found, in discovery order.
    pub violations: Vec<Violation>,
    /// Number of individual property evaluations performed.
    pub checks: usize,
}

impl CheckReport {
    /// An empty report (no checks run yet).
    pub fn new() -> Self {
        CheckReport::default()
    }

    /// Records that one property evaluation was performed.
    pub fn record_check(&mut self) {
        self.checks += 1;
    }

    /// Records `count` property evaluations at once.
    pub fn record_checks(&mut self, count: usize) {
        self.checks += count;
    }

    /// Records a violation.
    pub fn violate(&mut self, property: impl Into<String>, details: impl Into<String>) {
        self.violations.push(Violation::new(property, details));
    }

    /// Evaluates a predicate as one check, recording a violation when it is false.
    pub fn expect(
        &mut self,
        condition: bool,
        property: impl Into<String>,
        details: impl FnOnce() -> String,
    ) {
        self.record_check();
        if !condition {
            self.violate(property, details());
        }
    }

    /// Whether no violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }

    /// Panics with a readable message if the report contains violations. Convenience
    /// for tests: `report.assert_passed("consensus under split-vote adversary")`.
    pub fn assert_passed(&self, context: &str) {
        assert!(
            self.passed(),
            "{context}: {} violation(s) across {} checks:\n{}",
            self.violations.len(),
            self.checks,
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            write!(f, "ok ({} checks)", self.checks)
        } else {
            writeln!(
                f,
                "FAILED ({} violations / {} checks)",
                self.violations.len(),
                self.checks
            )?;
            for violation in &self.violations {
                writeln!(f, "  - {violation}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_passes_with_zero_checks() {
        let report = CheckReport::new();
        assert!(report.passed());
        assert_eq!(report.checks, 0);
        assert_eq!(report.to_string(), "ok (0 checks)");
    }

    #[test]
    fn expect_records_checks_and_violations() {
        let mut report = CheckReport::new();
        report.expect(true, "p1", || {
            unreachable!("details must not be built on success")
        });
        report.expect(false, "p2", || "observed the bad thing".to_string());
        assert_eq!(report.checks, 2);
        assert_eq!(report.violations.len(), 1);
        assert!(!report.passed());
        assert_eq!(report.violations[0].property, "p2");
        assert!(report.to_string().contains("observed the bad thing"));
    }

    #[test]
    fn merge_accumulates_both_fields() {
        let mut a = CheckReport::new();
        a.expect(true, "x", String::new);
        let mut b = CheckReport::new();
        b.expect(false, "y", || "boom".into());
        a.merge(b);
        assert_eq!(a.checks, 2);
        assert_eq!(a.violations.len(), 1);
    }

    #[test]
    #[should_panic(expected = "under attack: 1 violation")]
    fn assert_passed_panics_with_context() {
        let mut report = CheckReport::new();
        report.expect(false, "agreement", || "nodes disagree".into());
        report.assert_passed("under attack");
    }

    #[test]
    fn violation_display_includes_property() {
        let v = Violation::new(
            "consensus/agreement",
            "node n3 decided 1, node n4 decided 0",
        );
        assert_eq!(
            v.to_string(),
            "[consensus/agreement] node n3 decided 1, node n4 decided 0"
        );
    }
}
