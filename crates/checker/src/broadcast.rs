//! Oracle for Theorem 1: the reliable-broadcast properties (Section V).
//!
//! The oracle looks at, for every correct node, the list of [`Accepted`] records it
//! produced for a designated sender `s`, plus ground truth only the test harness
//! knows: whether `s` was correct and, if so, what it actually broadcast. It checks
//!
//! * **Correctness** — a correct sender's message is accepted by every correct node;
//! * **Unforgeability** — if the sender is correct, nothing it did not broadcast is
//!   accepted by any correct node;
//! * **Relay** — if any correct node accepts `(m, s)` in round `r`, every correct node
//!   accepts `(m, s)` by round `r + 1`;
//! * **Consistency** — all correct nodes accept exactly the same set of values for
//!   `s` by the end of the run (the property a Byzantine, equivocating sender must not
//!   be able to break).
//!
//! Consistency is implied by relay for long-enough runs; it is checked separately so
//! that a too-short run (where relay has not had its extra round yet) is reported as a
//! relay issue, not silently accepted.

use std::collections::BTreeSet;
use std::fmt::Debug;

use uba_core::reliable_broadcast::{Accepted, ReliableBroadcast};
use uba_simnet::{NodeId, Protocol};

use crate::report::CheckReport;

/// The acceptance records of one correct node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeAcceptances<M> {
    /// The observing node.
    pub node: NodeId,
    /// Everything it accepted for the designated sender, in acceptance order.
    pub accepted: Vec<Accepted<M>>,
}

/// Ground truth about the designated sender, known to the harness but not to nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SenderTruth<M> {
    /// The sender is correct and broadcast exactly this message in round 1.
    Correct(M),
    /// The sender is Byzantine (no statement about what it sent to whom).
    Byzantine,
}

/// Collects acceptance observations from protocol nodes.
pub fn observe<M: Clone + Ord + Debug + std::hash::Hash>(
    nodes: &[ReliableBroadcast<M>],
) -> Vec<NodeAcceptances<M>> {
    nodes
        .iter()
        .map(|n| NodeAcceptances {
            node: n.id(),
            accepted: n.accepted().to_vec(),
        })
        .collect()
}

/// Runs the Theorem 1 oracle. `final_round` is the last round the execution ran; the
/// relay check only requires acceptance by `r + 1` when `r + 1 <= final_round`.
pub fn check_reliable_broadcast<M: Clone + Ord + Debug>(
    truth: &SenderTruth<M>,
    observations: &[NodeAcceptances<M>],
    final_round: u64,
) -> CheckReport {
    let mut report = CheckReport::new();

    // Correctness and unforgeability only apply to a correct sender.
    if let SenderTruth::Correct(message) = truth {
        for obs in observations {
            report.expect(
                obs.accepted.iter().any(|a| &a.message == message),
                "reliable-broadcast/correctness",
                || {
                    format!(
                        "correct sender broadcast {message:?} but node {} never accepted it \
                         (accepted: {:?})",
                        obs.node, obs.accepted
                    )
                },
            );
            for accepted in &obs.accepted {
                report.expect(
                    &accepted.message == message,
                    "reliable-broadcast/unforgeability",
                    || {
                        format!(
                            "node {} accepted {:?} which the correct sender never broadcast \
                             (it broadcast {message:?})",
                            obs.node, accepted.message
                        )
                    },
                );
            }
        }
    }

    // Consistency: by the end of the run every correct node accepted the same set.
    let accepted_sets: Vec<BTreeSet<&M>> = observations
        .iter()
        .map(|obs| obs.accepted.iter().map(|a| &a.message).collect())
        .collect();
    if let Some(first) = accepted_sets.first() {
        for (obs, set) in observations.iter().zip(&accepted_sets).skip(1) {
            report.expect(set == first, "reliable-broadcast/consistency", || {
                format!(
                    "node {} accepted {:?} but node {} accepted {:?}",
                    observations[0].node, first, obs.node, set
                )
            });
        }
    }

    // Relay: if some correct node accepts (m, s) in round r, every correct node
    // accepts (m, s) by round r + 1 (when the run lasted long enough to see it).
    let mut earliest: Vec<(&M, u64)> = Vec::new();
    for obs in observations {
        for accepted in &obs.accepted {
            match earliest.iter_mut().find(|(m, _)| *m == &accepted.message) {
                Some((_, round)) => *round = (*round).min(accepted.round),
                None => earliest.push((&accepted.message, accepted.round)),
            }
        }
    }
    for (message, first_round) in earliest {
        let deadline = first_round + 1;
        if deadline > final_round {
            continue; // The run ended before the relay deadline; nothing to check.
        }
        for obs in observations {
            report.expect(
                obs.accepted
                    .iter()
                    .any(|a| &a.message == message && a.round <= deadline),
                "reliable-broadcast/relay",
                || {
                    format!(
                        "{message:?} was first accepted in round {first_round} but node {} had \
                         not accepted it by round {deadline}",
                        obs.node
                    )
                },
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(message: u64, round: u64) -> Accepted<u64> {
        Accepted {
            message,
            source: NodeId::new(1),
            round,
        }
    }

    fn obs(node: u64, accepted: Vec<Accepted<u64>>) -> NodeAcceptances<u64> {
        NodeAcceptances {
            node: NodeId::new(node),
            accepted,
        }
    }

    #[test]
    fn correct_sender_accepted_everywhere_passes() {
        let observations = vec![
            obs(10, vec![acc(42, 3)]),
            obs(11, vec![acc(42, 3)]),
            obs(12, vec![acc(42, 4)]),
        ];
        let report = check_reliable_broadcast(&SenderTruth::Correct(42), &observations, 10);
        report.assert_passed("correct sender");
        assert!(report.checks > 0);
    }

    #[test]
    fn missing_acceptance_violates_correctness() {
        let observations = vec![obs(10, vec![acc(42, 3)]), obs(11, vec![])];
        let report = check_reliable_broadcast(&SenderTruth::Correct(42), &observations, 10);
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "reliable-broadcast/correctness"));
    }

    #[test]
    fn forged_acceptance_violates_unforgeability() {
        let observations = vec![
            obs(10, vec![acc(42, 3), acc(99, 4)]),
            obs(11, vec![acc(42, 3)]),
        ];
        let report = check_reliable_broadcast(&SenderTruth::Correct(42), &observations, 10);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "reliable-broadcast/unforgeability"));
    }

    #[test]
    fn byzantine_sender_with_diverging_accept_sets_violates_consistency() {
        let observations = vec![obs(10, vec![acc(1, 3)]), obs(11, vec![acc(2, 3)])];
        let report = check_reliable_broadcast(&SenderTruth::Byzantine, &observations, 10);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "reliable-broadcast/consistency"));
    }

    #[test]
    fn byzantine_sender_accepted_nowhere_is_fine() {
        let observations = vec![obs(10, vec![]), obs(11, vec![]), obs(12, vec![])];
        check_reliable_broadcast(&SenderTruth::Byzantine, &observations, 10)
            .assert_passed("accepting nothing from a Byzantine sender is allowed");
    }

    #[test]
    fn late_acceptance_violates_relay() {
        // Node 10 accepts in round 3, node 11 only in round 6 — relay requires round 4.
        let observations = vec![obs(10, vec![acc(7, 3)]), obs(11, vec![acc(7, 6)])];
        let report = check_reliable_broadcast(&SenderTruth::Byzantine, &observations, 10);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "reliable-broadcast/relay"));
    }

    #[test]
    fn relay_deadline_beyond_run_end_is_not_enforced() {
        // First acceptance in the very last round of the run: the +1 deadline is past
        // the end of the execution, so the missing acceptance at node 11 is not a
        // relay violation (but it is still a consistency one).
        let observations = vec![obs(10, vec![acc(7, 10)]), obs(11, vec![])];
        let report = check_reliable_broadcast(&SenderTruth::Byzantine, &observations, 10);
        assert!(!report
            .violations
            .iter()
            .any(|v| v.property == "reliable-broadcast/relay"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "reliable-broadcast/consistency"));
    }

    #[test]
    fn observe_extracts_node_states() {
        let sender = ReliableBroadcast::sender(NodeId::new(5), 1u64);
        let receiver = ReliableBroadcast::receiver(NodeId::new(6), NodeId::new(5));
        let observations = observe(&[sender, receiver]);
        assert_eq!(observations.len(), 2);
        assert_eq!(observations[0].node, NodeId::new(5));
        assert!(observations[1].accepted.is_empty());
    }
}
