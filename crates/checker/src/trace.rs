//! Trace attribution: who delivered what, and did the message plane stay
//! zero-copy?
//!
//! The engine's [`TraceLog`] records one event per delivery, carrying the payload
//! behind the same [`Shared`] handle the recipient's inbox holds. That gives this
//! oracle two capabilities the report-level oracles lack:
//!
//! * **attribution** — deliveries split by honest vs Byzantine sender, per the
//!   engine's authoritative `byzantine` flag (the sender id is attached by the
//!   network and cannot be forged, so the split is ground truth);
//! * **sharing** — the handle *tokens* reveal whether a broadcast's fan-out
//!   re-used one payload allocation or silently re-materialised it per
//!   recipient. [`check_zero_copy`] turns that into an executable property, so a
//!   future engine change that re-introduces per-recipient deep clones fails a
//!   test instead of quietly regressing the allocation profile.

use std::collections::HashSet;

use uba_simnet::{NodeId, TraceLog};

use crate::report::{CheckReport, Violation};

/// Per-sender-class delivery accounting over a recorded trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceAttribution {
    /// Total deliveries recorded (excluding events dropped at capacity).
    pub deliveries: u64,
    /// Deliveries whose sender was a correct node.
    pub honest: u64,
    /// Deliveries whose sender was controlled by the adversary.
    pub byzantine: u64,
    /// Distinct payload *allocations* observed across all deliveries (by handle
    /// token). With a zero-copy plane this is bounded by the number of messages
    /// produced, never by the delivery fan-out.
    pub distinct_allocations: u64,
    /// Distinct payload *values* observed (by cached digest). `distinct_allocations`
    /// may exceed this (two senders can produce equal payloads independently), but
    /// with a healthy plane it stays far below `deliveries`.
    pub distinct_values: u64,
}

/// Summarises a trace: deliveries per sender class plus payload-sharing counts.
pub fn attribute_trace<P>(trace: &TraceLog<P>) -> TraceAttribution {
    let mut allocations: HashSet<usize> = HashSet::new();
    let mut values: HashSet<u64> = HashSet::new();
    let mut attribution = TraceAttribution::default();
    for event in trace.events() {
        attribution.deliveries += 1;
        if event.byzantine {
            attribution.byzantine += 1;
        } else {
            attribution.honest += 1;
        }
        allocations.insert(event.payload.token());
        values.insert(event.payload.digest());
    }
    attribution.distinct_allocations = allocations.len() as u64;
    attribution.distinct_values = values.len() as u64;
    attribution
}

/// Deliveries to one recipient attributed by sender class: `(honest, byzantine)`.
pub fn deliveries_to<P>(trace: &TraceLog<P>, to: NodeId) -> (u64, u64) {
    let mut honest = 0;
    let mut byzantine = 0;
    for event in trace.to_node(to) {
        if event.byzantine {
            byzantine += 1;
        } else {
            honest += 1;
        }
    }
    (honest, byzantine)
}

/// The zero-copy property of the shared-payload message plane: across a recorded
/// trace, the number of distinct payload allocations must not exceed
/// `produced_messages` — the count of compact message-production events (broadcasts
/// counted once, not once per recipient) plus adversary injections. A violation
/// means some layer re-materialised payloads per recipient.
pub fn check_zero_copy<P>(trace: &TraceLog<P>, produced_messages: u64) -> CheckReport {
    let mut report = CheckReport::new();
    let attribution = attribute_trace(trace);
    report.checks += 1;
    if attribution.distinct_allocations > produced_messages {
        report.violations.push(Violation::new(
            "message-plane/zero-copy",
            format!(
                "{} distinct payload allocations observed across {} deliveries, but only \
                 {} messages were produced — a layer is deep-cloning payloads per recipient",
                attribution.distinct_allocations, attribution.deliveries, produced_messages,
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::{Shared, TraceEvent};

    fn event(from: u64, to: u64, byzantine: bool, payload: Shared<u32>) -> TraceEvent<u32> {
        TraceEvent {
            round: 1,
            from: NodeId::new(from),
            to: NodeId::new(to),
            byzantine,
            payload,
        }
    }

    #[test]
    fn attribution_counts_classes_and_sharing() {
        let broadcast = Shared::new(7u32);
        let mut trace = TraceLog::with_capacity(16);
        // One broadcast delivered to three nodes (shared handle), one Byzantine
        // injection with a fresh payload that happens to equal the broadcast.
        for to in [1, 2, 3] {
            trace.record(event(10, to, false, broadcast.clone()));
        }
        trace.record(event(99, 1, true, Shared::new(7u32)));

        let attribution = attribute_trace(&trace);
        assert_eq!(attribution.deliveries, 4);
        assert_eq!(attribution.honest, 3);
        assert_eq!(attribution.byzantine, 1);
        assert_eq!(attribution.distinct_allocations, 2, "broadcast + injection");
        assert_eq!(attribution.distinct_values, 1, "equal payload value");
        assert_eq!(deliveries_to(&trace, NodeId::new(1)), (1, 1));
    }

    #[test]
    fn zero_copy_check_flags_per_recipient_cloning() {
        let mut shared = TraceLog::with_capacity(16);
        let payload = Shared::new(1u32);
        for to in [1, 2, 3] {
            shared.record(event(10, to, false, payload.clone()));
        }
        assert!(
            check_zero_copy(&shared, 1).passed(),
            "one broadcast, one allocation"
        );

        let mut cloned = TraceLog::with_capacity(16);
        for to in [1, 2, 3] {
            cloned.record(event(10, to, false, Shared::new(1u32)));
        }
        let report = check_zero_copy(&cloned, 1);
        assert!(!report.passed(), "three allocations for one broadcast");
        assert!(report.violations[0].property.contains("zero-copy"));
    }
}
