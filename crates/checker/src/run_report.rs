//! Oracles over the unified [`RunReport`] produced by the `Simulation` driver.
//!
//! The driver records protocol-agnostic sections (decisions, accept sets, value
//! ranges); this module replays the corresponding theorem oracles over those
//! sections, so any consumer holding a report — the experiment harness, a JSON
//! baseline loaded from disk, a test — can verify the paper's properties without
//! access to the live engine:
//!
//! * a `consensus` section runs the Theorem 3 oracle ([`crate::consensus`]);
//! * a `broadcast` section runs the Theorem 1 oracle ([`crate::broadcast`]),
//!   except the relay property, which needs per-round traces the report does not
//!   carry;
//! * an `approx` section runs the Theorem 4 containment/contraction oracle
//!   ([`crate::approx`]).
//!
//! [`attach_verdicts`] writes the outcomes back into [`RunReport::verdicts`], the
//! form in which reports are serialised to recorded baselines.

use uba_core::consensus::Decision;
use uba_core::reliable_broadcast::Accepted;
use uba_core::sim::{OracleVerdict, RunReport};

use crate::broadcast::{check_reliable_broadcast, NodeAcceptances, SenderTruth};
use crate::consensus::{check_consensus, ConsensusCheck, ConsensusObservation};
use crate::report::CheckReport;

/// Runs every applicable oracle over the report's sections and returns the merged
/// [`CheckReport`]. Sections that are absent contribute nothing.
pub fn check_run_report(report: &RunReport) -> CheckReport {
    let mut merged = CheckReport::new();
    for (_, section_report) in section_reports(report) {
        merged.merge(section_report);
    }
    merged
}

/// Runs every applicable oracle and renders one [`OracleVerdict`] per section.
pub fn report_verdicts(report: &RunReport) -> Vec<OracleVerdict> {
    section_reports(report)
        .into_iter()
        .map(|(oracle, section_report)| OracleVerdict {
            oracle: oracle.to_string(),
            passed: section_report.passed(),
            checks: section_report.checks,
            violations: section_report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect(),
        })
        .collect()
}

/// Runs every applicable oracle and stores both the verdicts and the paired
/// distance-to-violation margins (see [`crate::margin`]) in the report itself.
pub fn attach_verdicts(report: &mut RunReport) {
    let sections = section_reports(report);
    report.verdicts = sections
        .iter()
        .map(|(oracle, section_report)| OracleVerdict {
            oracle: oracle.to_string(),
            passed: section_report.passed(),
            checks: section_report.checks,
            violations: section_report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect(),
        })
        .collect();
    report.margins = crate::margin::margin_section(report, &sections);
}

pub(crate) fn section_reports(report: &RunReport) -> Vec<(&'static str, CheckReport)> {
    let mut reports = Vec::new();
    if let Some(consensus) = &report.consensus {
        let observations: Vec<ConsensusObservation<u64>> = consensus
            .inputs
            .iter()
            .map(|&(node, input)| ConsensusObservation {
                node,
                input,
                decision: consensus
                    .decisions
                    .iter()
                    .find(|d| d.node == node)
                    .map(|d| Decision {
                        value: d.value,
                        phase: d.phase,
                        round: d.round,
                    }),
            })
            .collect();
        let config = ConsensusCheck {
            // A capped run legitimately leaves nodes undecided; agreement and
            // validity must hold regardless.
            expect_termination: report.status.is_completed(),
            round_bound: None,
        };
        reports.push(("consensus", check_consensus(&observations, config)));
    }
    if let Some(broadcast) = &report.broadcast {
        let truth = match broadcast.sent {
            Some(message) if broadcast.source_correct => SenderTruth::Correct(message),
            _ => SenderTruth::Byzantine,
        };
        let observations: Vec<NodeAcceptances<u64>> = broadcast
            .accepted
            .iter()
            .map(|set| NodeAcceptances {
                node: set.node,
                accepted: set
                    .values
                    .iter()
                    .map(|&(message, round)| Accepted {
                        message,
                        source: broadcast.source,
                        round,
                    })
                    .collect(),
            })
            .collect();
        // The relay property needs acceptance-vs-trace timing the report does not
        // record, so the report-level oracle checks correctness, unforgeability and
        // consistency with the relay deadline disabled (final_round = 0 skips it).
        reports.push((
            "reliable-broadcast",
            check_reliable_broadcast(&truth, &observations, 0),
        ));
    }
    if let Some(approx) = &report.approx {
        reports.push((
            "approx-agreement",
            crate::approx::check_approx(&approx.inputs, &approx.outputs),
        ));
    }
    if let Some(recovery) = &report.recovery {
        reports.push(("recovery", crate::recovery::check_recovery(recovery)));
    }
    if let Some(stream) = &report.stream {
        reports.push(("stream", crate::stream::check_stream(stream)));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};

    #[test]
    fn consensus_report_is_accepted_by_the_oracle() {
        let mut report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(41)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&[0, 1, 0, 1, 0, 1, 0])
            .run()
            .unwrap();
        check_run_report(&report).assert_passed("consensus run report");
        attach_verdicts(&mut report);
        assert_eq!(report.verdicts.len(), 1);
        assert_eq!(report.verdicts[0].oracle, "consensus");
        assert!(report.verdicts_passed());
        assert!(report.verdicts[0].checks > 0);
    }

    #[test]
    fn broadcast_report_is_accepted_by_the_oracle() {
        let mut report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(43)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .broadcast(42)
            .run()
            .unwrap();
        attach_verdicts(&mut report);
        assert_eq!(report.verdicts.len(), 1);
        assert_eq!(report.verdicts[0].oracle, "reliable-broadcast");
        assert!(report.verdicts_passed());
    }

    #[test]
    fn tampered_report_fails_the_oracle() {
        let mut report = Simulation::scenario()
            .correct(5)
            .byzantine(1)
            .seed(45)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&[0, 1, 0, 1, 0])
            .run()
            .unwrap();
        let section = report.consensus.as_mut().unwrap();
        section.decisions[0].value = 1 - section.decisions[0].value;
        let checked = check_run_report(&report);
        assert!(!checked.passed(), "a flipped decision must be caught");
        assert!(checked
            .violations
            .iter()
            .any(|v| v.property == "consensus/agreement"));
    }

    #[test]
    fn verdicts_survive_serde_round_trips() {
        let mut report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(47)
            .broadcast_equivocating(1, 2)
            .run()
            .unwrap();
        attach_verdicts(&mut report);
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(back.verdicts_passed());
    }
}
