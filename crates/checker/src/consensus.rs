//! Oracle for Theorem 3: consensus agreement, validity and round complexity
//! (Section VII).

use std::fmt::Debug;

use uba_core::consensus::Decision;
use uba_simnet::NodeId;

use crate::report::CheckReport;

/// What one correct node put in and got out of a consensus execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusObservation<V> {
    /// The observing node.
    pub node: NodeId,
    /// Its input opinion.
    pub input: V,
    /// Its decision, if it terminated (a `None` here is itself a termination
    /// violation when `expect_termination` is set).
    pub decision: Option<Decision<V>>,
}

/// Configuration of the consensus oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsensusCheck {
    /// Whether every correct node must have decided.
    pub expect_termination: bool,
    /// If set, the latest network round by which every node must have decided
    /// (the `O(f)` bound instantiated by the caller, e.g. `3 + 5 * (f + c)`).
    pub round_bound: Option<u64>,
}

impl Default for ConsensusCheck {
    fn default() -> Self {
        ConsensusCheck {
            expect_termination: true,
            round_bound: None,
        }
    }
}

/// Runs the Theorem 3 oracle over the observations of all correct nodes.
pub fn check_consensus<V: Clone + Eq + Debug>(
    observations: &[ConsensusObservation<V>],
    config: ConsensusCheck,
) -> CheckReport {
    let mut report = CheckReport::new();
    if observations.is_empty() {
        return report;
    }

    // Termination.
    if config.expect_termination {
        for obs in observations {
            report.expect(obs.decision.is_some(), "consensus/termination", || {
                format!("node {} never decided", obs.node)
            });
        }
    }

    let decided: Vec<(&NodeId, &Decision<V>)> = observations
        .iter()
        .filter_map(|o| o.decision.as_ref().map(|d| (&o.node, d)))
        .collect();

    // Agreement: all decided values are identical.
    if let Some((first_node, first)) = decided.first() {
        for (node, decision) in decided.iter().skip(1) {
            report.expect(decision.value == first.value, "consensus/agreement", || {
                format!(
                    "node {first_node} decided {:?} but node {node} decided {:?}",
                    first.value, decision.value
                )
            });
        }

        // Validity: the decided value is the input of some correct node, and unanimous
        // inputs force that value.
        let inputs: Vec<&V> = observations.iter().map(|o| &o.input).collect();
        report.expect(inputs.contains(&&first.value), "consensus/validity", || {
            format!(
                "decided value {:?} is not the input of any correct node ({inputs:?})",
                first.value
            )
        });
        let unanimous = inputs.windows(2).all(|w| w[0] == w[1]);
        if unanimous {
            report.expect(
                &first.value == inputs[0],
                "consensus/validity-unanimous",
                || {
                    format!(
                        "all correct inputs were {:?} but the decision was {:?}",
                        inputs[0], first.value
                    )
                },
            );
        }
    }

    // Round bound.
    if let Some(bound) = config.round_bound {
        for (node, decision) in &decided {
            report.expect(decision.round <= bound, "consensus/round-bound", || {
                format!(
                    "node {node} decided in round {} which exceeds the bound {bound}",
                    decision.round
                )
            });
        }
    }

    report
}

/// Convenience constructor for observations from parallel slices of inputs and
/// engine outputs (the shape `SyncEngine::outputs` produces).
pub fn observations_from_outputs<V: Clone>(
    inputs: &[(NodeId, V)],
    outputs: &[(NodeId, Option<Decision<V>>)],
) -> Vec<ConsensusObservation<V>> {
    inputs
        .iter()
        .map(|(node, input)| ConsensusObservation {
            node: *node,
            input: input.clone(),
            decision: outputs
                .iter()
                .find(|(id, _)| id == node)
                .and_then(|(_, decision)| decision.clone()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(node: u64, input: u64, decision: Option<(u64, u64)>) -> ConsensusObservation<u64> {
        ConsensusObservation {
            node: NodeId::new(node),
            input,
            decision: decision.map(|(value, round)| Decision {
                value,
                phase: 1,
                round,
            }),
        }
    }

    #[test]
    fn agreeing_valid_decisions_pass() {
        let observations = vec![
            obs(1, 0, Some((0, 8))),
            obs(2, 1, Some((0, 8))),
            obs(3, 0, Some((0, 9))),
        ];
        check_consensus(&observations, ConsensusCheck::default()).assert_passed("agreeing run");
    }

    #[test]
    fn disagreement_is_reported() {
        let observations = vec![obs(1, 0, Some((0, 8))), obs(2, 1, Some((1, 8)))];
        let report = check_consensus(&observations, ConsensusCheck::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "consensus/agreement"));
    }

    #[test]
    fn decision_outside_inputs_violates_validity() {
        let observations = vec![obs(1, 0, Some((7, 8))), obs(2, 1, Some((7, 8)))];
        let report = check_consensus(&observations, ConsensusCheck::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "consensus/validity"));
    }

    #[test]
    fn unanimous_inputs_must_win() {
        let observations = vec![obs(1, 5, Some((5, 8))), obs(2, 5, Some((5, 8)))];
        check_consensus(&observations, ConsensusCheck::default()).assert_passed("unanimity");
        // Same inputs but a different (still "valid-looking") decision value.
        let bad = vec![
            obs(1, 5, Some((5, 8))),
            obs(2, 5, Some((5, 8))),
            obs(3, 5, None),
        ];
        let report = check_consensus(&bad, ConsensusCheck::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "consensus/termination"));
    }

    #[test]
    fn missing_decision_is_only_a_violation_when_termination_expected() {
        let observations = vec![obs(1, 0, Some((0, 8))), obs(2, 0, None)];
        let strict = check_consensus(&observations, ConsensusCheck::default());
        assert!(!strict.passed());
        let lenient = check_consensus(
            &observations,
            ConsensusCheck {
                expect_termination: false,
                round_bound: None,
            },
        );
        lenient.assert_passed("partial run without termination requirement");
    }

    #[test]
    fn round_bound_is_enforced() {
        let observations = vec![obs(1, 0, Some((0, 30))), obs(2, 0, Some((0, 8)))];
        let report = check_consensus(
            &observations,
            ConsensusCheck {
                expect_termination: true,
                round_bound: Some(20),
            },
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "consensus/round-bound"));
    }

    #[test]
    fn empty_observation_set_is_trivially_ok() {
        let report = check_consensus::<u64>(&[], ConsensusCheck::default());
        assert!(report.passed());
        assert_eq!(report.checks, 0);
    }

    #[test]
    fn observations_from_outputs_joins_by_node_id() {
        let inputs = vec![(NodeId::new(1), 0u64), (NodeId::new(2), 1u64)];
        let outputs = vec![
            (
                NodeId::new(2),
                Some(Decision {
                    value: 0,
                    phase: 1,
                    round: 9,
                }),
            ),
            (NodeId::new(1), None),
        ];
        let observations = observations_from_outputs(&inputs, &outputs);
        assert_eq!(observations.len(), 2);
        assert!(observations[0].decision.is_none());
        assert_eq!(observations[1].decision.as_ref().unwrap().value, 0);
    }
}
