//! Oracles for Theorem 6: the chain-prefix and chain-growth properties of dynamic
//! total ordering (Section XI).

use std::fmt::Debug;

use uba_core::total_order::OrderedEvent;
use uba_simnet::NodeId;

use crate::report::CheckReport;

/// A correct node's finalised log at the end of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainObservation<E> {
    /// The observing node.
    pub node: NodeId,
    /// Its finalised log, oldest entry first.
    pub chain: Vec<OrderedEvent<E>>,
    /// The round the node joined the system (entries before it cannot appear in its
    /// log; the prefix comparison is restricted to rounds both nodes cover).
    pub joined_round: u64,
}

/// Checks the chain-prefix property: for any two correct nodes, the log entries for
/// the rounds both of them cover are identical and identically ordered.
pub fn check_chain_prefix<E: Clone + Eq + Debug>(
    observations: &[ChainObservation<E>],
) -> CheckReport {
    let mut report = CheckReport::new();
    for (index, a) in observations.iter().enumerate() {
        for b in observations.iter().skip(index + 1) {
            // Only rounds both nodes were present for can be compared.
            let from_round = a.joined_round.max(b.joined_round);
            let a_suffix: Vec<&OrderedEvent<E>> =
                a.chain.iter().filter(|e| e.round >= from_round).collect();
            let b_suffix: Vec<&OrderedEvent<E>> =
                b.chain.iter().filter(|e| e.round >= from_round).collect();
            let common = a_suffix.len().min(b_suffix.len());
            report.expect(
                a_suffix[..common] == b_suffix[..common],
                "total-order/chain-prefix",
                || {
                    let diverge = a_suffix
                        .iter()
                        .zip(b_suffix.iter())
                        .position(|(x, y)| x != y)
                        .unwrap_or(common);
                    format!(
                        "logs of {} and {} diverge at shared position {diverge}: {:?} vs {:?}",
                        a.node,
                        b.node,
                        a_suffix.get(diverge),
                        b_suffix.get(diverge)
                    )
                },
            );
        }
    }
    report
}

/// Checks the chain-growth property over a sequence of log-length snapshots taken at
/// increasing rounds: lengths never shrink, and between the first and the last
/// snapshot every node's log grows by at least `min_growth` entries (use 1 to assert
/// "events keep getting appended"; use 0 to only check monotonicity).
pub fn check_chain_growth(snapshots: &[Vec<(NodeId, usize)>], min_growth: usize) -> CheckReport {
    let mut report = CheckReport::new();
    for window in snapshots.windows(2) {
        let (earlier, later) = (&window[0], &window[1]);
        for (node, early_len) in earlier {
            if let Some((_, late_len)) = later.iter().find(|(id, _)| id == node) {
                report.expect(late_len >= early_len, "total-order/chain-monotone", || {
                    format!("log of {node} shrank from {early_len} to {late_len}")
                });
            }
        }
    }
    if let (Some(first), Some(last)) = (snapshots.first(), snapshots.last()) {
        if snapshots.len() >= 2 {
            for (node, first_len) in first {
                if let Some((_, last_len)) = last.iter().find(|(id, _)| id == node) {
                    report.expect(
                        *last_len >= first_len + min_growth,
                        "total-order/chain-growth",
                        || {
                            format!(
                                "log of {node} grew only from {first_len} to {last_len}, \
                                 expected at least +{min_growth}"
                            )
                        },
                    );
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u64, witness: u64, event: u64) -> OrderedEvent<u64> {
        OrderedEvent {
            round,
            witness: NodeId::new(witness),
            event,
        }
    }

    fn obs(node: u64, chain: Vec<OrderedEvent<u64>>, joined: u64) -> ChainObservation<u64> {
        ChainObservation {
            node: NodeId::new(node),
            chain,
            joined_round: joined,
        }
    }

    #[test]
    fn identical_chains_pass() {
        let chain = vec![event(1, 10, 100), event(2, 11, 200)];
        let observations = vec![obs(10, chain.clone(), 0), obs(11, chain, 0)];
        check_chain_prefix(&observations).assert_passed("identical chains");
    }

    #[test]
    fn prefix_relationship_passes() {
        let long = vec![event(1, 10, 100), event(2, 11, 200), event(3, 10, 300)];
        let short = long[..2].to_vec();
        let observations = vec![obs(10, long, 0), obs(11, short, 0)];
        check_chain_prefix(&observations).assert_passed("prefix chains");
    }

    #[test]
    fn diverging_chains_are_reported() {
        let a = vec![event(1, 10, 100), event(2, 11, 200)];
        let b = vec![event(1, 10, 100), event(2, 11, 999)];
        let observations = vec![obs(10, a, 0), obs(11, b, 0)];
        let report = check_chain_prefix(&observations);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "total-order/chain-prefix"));
    }

    #[test]
    fn late_joiner_is_only_compared_on_shared_rounds() {
        // The founder has entries from round 1; the joiner only from round 3 onwards.
        let founder = vec![event(1, 10, 100), event(2, 10, 200), event(3, 10, 300)];
        let joiner = vec![event(3, 10, 300)];
        let observations = vec![obs(10, founder, 0), obs(20, joiner, 3)];
        check_chain_prefix(&observations).assert_passed("late joiner");
    }

    #[test]
    fn growth_snapshots_must_be_monotone() {
        let snapshots = vec![
            vec![(NodeId::new(1), 2), (NodeId::new(2), 2)],
            vec![(NodeId::new(1), 1), (NodeId::new(2), 3)],
        ];
        let report = check_chain_growth(&snapshots, 0);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "total-order/chain-monotone"));
    }

    #[test]
    fn growth_requires_minimum_progress() {
        let snapshots = vec![
            vec![(NodeId::new(1), 2)],
            vec![(NodeId::new(1), 2)],
            vec![(NodeId::new(1), 3)],
        ];
        check_chain_growth(&snapshots, 1).assert_passed("grew by one");
        let report = check_chain_growth(&snapshots, 2);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "total-order/chain-growth"));
    }

    #[test]
    fn single_snapshot_checks_nothing() {
        let snapshots = vec![vec![(NodeId::new(1), 2)]];
        let report = check_chain_growth(&snapshots, 5);
        assert!(report.passed());
        assert_eq!(report.checks, 0);
    }
}
