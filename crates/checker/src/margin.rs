//! Quantitative distance-to-violation margins for every oracle family.
//!
//! Verdicts ([`crate::run_report::report_verdicts`]) are pass/fail; they say
//! nothing about *how close* a run came to violating a theorem. This module
//! pairs every applicable oracle with a [`OracleMargin`]: a non-negative
//! integer that is `0` exactly when the paired verdict fails and grows with
//! the run's distance from the violation surface — rounds-to-budget slack for
//! liveness, resiliency headroom above `n = 3f`, scaled containment and
//! contraction slack for approximate agreement, acceptance and unanimity
//! distance for broadcast, clean-replay counts for recovery.
//!
//! The margins are the fitness signal of the search-guided fuzzer
//! (`uba_bench::search`): mutation moves that shrink a margin move the
//! scenario toward the violation surface even while every verdict still
//! passes, which is what lets a hill-climb find violations a blind grid sweep
//! cannot.
//!
//! Two kinds of entries are attached:
//!
//! * **verdict-paired** — one entry per [`OracleVerdict`] family (`consensus`,
//!   `reliable-broadcast`, `approx-agreement`, `recovery`, `stream`): the
//!   margin is clamped to 0 when the verdict fails and to ≥ 1 when it passes,
//!   so the invariant holds by construction regardless of how informative the
//!   gradient metrics are.
//! * **structural** — families whose properties are recorded as section booleans
//!   rather than verdicts: `liveness` (paired with `RunStatus::is_completed`),
//!   `resiliency` (paired with [`ScenarioSpec::admissible`]), `rotor`
//!   (`RotorSection::good_round`), `parallel-consensus`
//!   (`ParallelSection::agreement`), `total-order` (`ChainSection::prefix_ok`)
//!   and `convergence` (the [`crate::approx::check_convergence`] oracle over
//!   the spread section).
//!
//! [`OracleMargin`]: uba_core::sim::OracleMargin
//! [`OracleVerdict`]: uba_core::sim::OracleVerdict
//! [`ScenarioSpec::admissible`]: uba_simnet::sim::ScenarioSpec::admissible

use uba_core::sim::{MarginMetric, MarginSection, OracleMargin, RunReport};

use crate::report::CheckReport;

/// Scale applied to real-valued slacks (approximate-agreement spreads) before
/// truncating to the integer margin domain: one margin unit per `10^-6` of
/// slack, matching the fixed-point resolution of `uba_core::Real`.
const REAL_SCALE: f64 = 1e6;

/// Computes the full margin section for a report, given the per-section oracle
/// outcomes already produced by the verdict pass. `section_outcomes` must be
/// the `(oracle name, CheckReport)` pairs of
/// `crate::run_report::section_reports` for the same report — the clamp that
/// enforces the `margin == 0 ⟺ verdict fails` invariant reads pass/fail from
/// them, so margins and verdicts can never disagree.
pub fn margin_section(
    report: &RunReport,
    section_outcomes: &[(&'static str, CheckReport)],
) -> MarginSection {
    let mut oracles = Vec::new();

    oracles.push(structural(
        "liveness",
        report.status.is_completed(),
        vec![metric(
            "rounds-slack",
            report
                .scenario
                .max_rounds
                .saturating_sub(report.rounds)
                .saturating_add(1),
        )],
    ));

    let headroom = report
        .scenario
        .n()
        .saturating_sub(3 * report.scenario.byzantine) as u64;
    oracles.push(structural(
        "resiliency",
        report.scenario.admissible(),
        vec![metric("headroom-above-3f", headroom)],
    ));

    for (oracle, outcome) in section_outcomes {
        let metrics = match *oracle {
            "consensus" => consensus_metrics(report),
            "reliable-broadcast" => broadcast_metrics(report),
            "approx-agreement" => approx_metrics(report),
            "recovery" => recovery_metrics(report),
            "stream" => stream_metrics(report),
            _ => Vec::new(),
        };
        oracles.push(clamped(oracle, outcome.passed(), metrics));
    }

    if let Some(rotor) = &report.rotor {
        oracles.push(structural(
            "rotor",
            rotor.good_round,
            vec![metric("coordinators-selected", rotor.selected as u64)],
        ));
    }
    if let Some(parallel) = &report.parallel {
        let instances = parallel
            .decisions
            .first()
            .map(|d| d.pairs.len() as u64)
            .unwrap_or(0);
        oracles.push(structural(
            "parallel-consensus",
            parallel.agreement,
            vec![metric("agreed-instances", instances)],
        ));
    }
    if let Some(chain) = &report.chain {
        let shortest = chain
            .lengths
            .iter()
            .map(|&(_, len)| len as u64)
            .min()
            .unwrap_or(0);
        oracles.push(structural(
            "total-order",
            chain.prefix_ok,
            vec![metric("common-prefix", shortest)],
        ));
    }
    if let Some(spreads) = &report.spreads {
        let outcome = crate::approx::check_convergence(&spreads.per_iteration);
        oracles.push(clamped(
            "convergence",
            outcome.passed(),
            convergence_metrics(&spreads.per_iteration),
        ));
    }

    MarginSection { oracles }
}

fn metric(name: &str, value: u64) -> MarginMetric {
    MarginMetric {
        name: name.to_string(),
        value,
    }
}

/// Builds a verdict-paired entry: margin 0 when the oracle failed, otherwise
/// the smallest gradient metric clamped to ≥ 1 (so a passing oracle never
/// reports 0 even when no metric yields a useful gradient).
fn clamped(oracle: &str, passed: bool, metrics: Vec<MarginMetric>) -> OracleMargin {
    let margin = if passed {
        metrics.iter().map(|m| m.value).min().unwrap_or(1).max(1)
    } else {
        0
    };
    OracleMargin {
        oracle: oracle.to_string(),
        margin,
        metrics,
    }
}

/// Builds a structural entry from a section boolean, same clamp discipline.
fn structural(oracle: &str, holds: bool, metrics: Vec<MarginMetric>) -> OracleMargin {
    clamped(oracle, holds, metrics)
}

fn consensus_metrics(report: &RunReport) -> Vec<MarginMetric> {
    let Some(section) = &report.consensus else {
        return Vec::new();
    };
    let mut metrics = Vec::new();
    // Rounds-to-termination slack: how much round budget remained when the
    // last node decided. Zero gradient (metric 1) while anyone is undecided.
    let termination_slack = if section.undecided.is_empty() {
        let last = section.decisions.iter().map(|d| d.round).max().unwrap_or(0);
        report
            .scenario
            .max_rounds
            .saturating_sub(last)
            .saturating_add(1)
    } else {
        1
    };
    metrics.push(metric("termination-slack", termination_slack));
    // Validity support: how many correct inputs equal the decided value — the
    // decision's distance from being forged out of thin air.
    let support = section
        .decisions
        .first()
        .map(|first| {
            section
                .inputs
                .iter()
                .filter(|&&(_, input)| input == first.value)
                .count() as u64
        })
        .unwrap_or(1);
    metrics.push(metric("validity-support", support));
    // Agreement spread: number of distinct decided values (1 = unanimous).
    let mut values: Vec<u64> = section.decisions.iter().map(|d| d.value).collect();
    values.sort_unstable();
    values.dedup();
    let spread_slack = if values.len() <= 1 { 2 } else { 0 };
    metrics.push(metric("agreement-spread-slack", spread_slack));
    metrics
}

fn broadcast_metrics(report: &RunReport) -> Vec<MarginMetric> {
    let Some(section) = &report.broadcast else {
        return Vec::new();
    };
    let mut metrics = Vec::new();
    // Unanimity distance: number of distinct accepted value sets (1 = consistent).
    let mut sets: Vec<Vec<u64>> = section
        .accepted
        .iter()
        .map(|set| set.values.iter().map(|&(value, _)| value).collect())
        .collect();
    sets.sort();
    sets.dedup();
    let unanimity = if sets.len() <= 1 { 2 } else { 0 };
    metrics.push(metric("unanimity-slack", unanimity));
    // Acceptance slack for a correct sender: round budget left after the last
    // correct node accepted the sent value.
    if section.source_correct {
        if let Some(sent) = section.sent {
            let accepted_rounds: Vec<u64> = section
                .accepted
                .iter()
                .filter_map(|set| {
                    set.values
                        .iter()
                        .find(|&&(value, _)| value == sent)
                        .map(|&(_, round)| round)
                })
                .collect();
            let slack = if accepted_rounds.len() == section.accepted.len() {
                let last = accepted_rounds.iter().copied().max().unwrap_or(0);
                report
                    .scenario
                    .max_rounds
                    .saturating_sub(last)
                    .saturating_add(1)
            } else {
                0
            };
            metrics.push(metric("acceptance-slack", slack));
        }
    }
    metrics
}

fn approx_metrics(report: &RunReport) -> Vec<MarginMetric> {
    let Some(section) = &report.approx else {
        return Vec::new();
    };
    let mut metrics = Vec::new();
    let (imin, imax) = section.input_range;
    // Containment slack: the worst output's distance inside the input range,
    // scaled to margin units. Zero once any output escapes the range.
    let containment = section
        .outputs
        .iter()
        .map(|&output| (output - imin).min(imax - output))
        .fold(f64::INFINITY, f64::min);
    let containment_units = if section.outputs.is_empty() {
        1
    } else if containment < 0.0 {
        0
    } else {
        (containment * REAL_SCALE) as u64 + 1
    };
    metrics.push(metric("containment-slack", containment_units));
    // Contraction slack: how far the output spread is below the input spread.
    let input_spread = imax - imin;
    let (omin, omax) = section.output_range;
    let output_spread = omax - omin;
    let contraction_units =
        if section.inputs.is_empty() || section.outputs.is_empty() || input_spread <= 0.0 {
            // Degenerate cases (no population, or an already-point input range)
            // cannot violate contraction — a unit margin, never a violation.
            1
        } else if output_spread < input_spread {
            ((input_spread - output_spread) * REAL_SCALE) as u64 + 1
        } else {
            0
        };
    metrics.push(metric("contraction-slack", contraction_units));
    metrics
}

fn recovery_metrics(report: &RunReport) -> Vec<MarginMetric> {
    let Some(section) = &report.recovery else {
        return Vec::new();
    };
    let clean = section
        .restarts
        .iter()
        .filter(|r| {
            r.send_conflicts == 0 && r.replayed_rounds == r.recovered_rounds && r.consumed_monotone
        })
        .count() as u64;
    vec![
        metric("clean-restarts", clean.saturating_add(1)),
        metric("restarts", section.restarts.len() as u64),
    ]
}

fn stream_metrics(report: &RunReport) -> Vec<MarginMetric> {
    let Some(section) = &report.stream else {
        return Vec::new();
    };
    vec![
        metric("completed-instances", section.completed as u64 + 1),
        metric("instances", section.instances.len() as u64),
    ]
}

fn convergence_metrics(spreads: &[f64]) -> Vec<MarginMetric> {
    // Halving slack: the tightest iteration's distance below the required
    // half-contraction. Zero once some iteration contracts by less than half.
    let slack = spreads
        .windows(2)
        .map(|w| w[0] / 2.0 - w[1])
        .fold(f64::INFINITY, f64::min);
    let units = if spreads.len() < 2 {
        1
    } else if slack < 0.0 {
        0
    } else {
        (slack * REAL_SCALE) as u64 + 1
    };
    vec![metric("halving-slack", units)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_report::attach_verdicts;
    use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};

    #[test]
    fn margins_pair_with_verdicts_and_respect_the_invariant() {
        let mut report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(41)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&[0, 1, 0, 1, 0, 1, 0])
            .run()
            .unwrap();
        attach_verdicts(&mut report);
        assert!(!report.margins.oracles.is_empty());
        for verdict in &report.verdicts {
            let margin = report
                .margins
                .margin_for(&verdict.oracle)
                .expect("every verdict has a paired margin");
            assert_eq!(
                margin == 0,
                !verdict.passed,
                "margin invariant broken for {}",
                verdict.oracle
            );
        }
        assert!(report.margins.margin_for("liveness").unwrap() >= 1);
        assert!(report.margins.margin_for("resiliency").unwrap() >= 1);
    }

    #[test]
    fn a_failing_oracle_zeroes_its_margin() {
        let mut report = Simulation::scenario()
            .correct(5)
            .byzantine(1)
            .seed(45)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&[0, 1, 0, 1, 0])
            .run()
            .unwrap();
        let section = report.consensus.as_mut().unwrap();
        section.decisions[0].value = 1 - section.decisions[0].value;
        attach_verdicts(&mut report);
        let consensus = report
            .verdicts
            .iter()
            .find(|v| v.oracle == "consensus")
            .unwrap();
        assert!(!consensus.passed);
        assert_eq!(report.margins.margin_for("consensus"), Some(0));
        assert_eq!(report.margins.min_margin(), Some(0));
    }

    #[test]
    fn inadmissible_scenarios_have_zero_resiliency_headroom() {
        let mut report = Simulation::scenario()
            .correct(2)
            .byzantine(1)
            .seed(7)
            .adversary(AdversaryKind::Silent)
            .consensus(&[0, 1])
            .run()
            .unwrap();
        attach_verdicts(&mut report);
        assert!(!report.scenario.admissible());
        assert_eq!(report.margins.margin_for("resiliency"), Some(0));
    }

    #[test]
    fn margins_survive_serde_round_trips() {
        let mut report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(47)
            .broadcast_equivocating(1, 2)
            .run()
            .unwrap();
        attach_verdicts(&mut report);
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.margins, report.margins);
    }
}
