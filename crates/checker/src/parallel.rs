//! Oracle for Theorem 5: parallel consensus validity, agreement and termination
//! (Section X).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

use uba_core::early_consensus::InstanceId;
use uba_core::parallel_consensus::ParallelDecision;
use uba_simnet::NodeId;

use crate::report::CheckReport;

/// What one correct node put in and got out of a parallel-consensus execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelObservation<V> {
    /// The observing node.
    pub node: NodeId,
    /// Its input `(identifier, opinion)` pairs.
    pub inputs: BTreeMap<InstanceId, V>,
    /// Its decision, if it terminated.
    pub decision: Option<ParallelDecision<V>>,
}

/// Runs the Theorem 5 oracle.
///
/// * **Termination** — every correct node produced a decision.
/// * **Agreement** — if a correct node outputs `(id, x)`, every other correct node
///   that outputs anything for `id` outputs the same `x`; moreover no correct node
///   omits a pair another correct node output (the paper's agreement is on the full
///   output set).
/// * **Validity** — a pair input at *every* correct node appears in every output.
/// * **No fabrication** — no output pair carries an identifier that no correct node
///   had as input (Byzantine-injected identifiers must never make it into an output).
pub fn check_parallel_consensus<V: Clone + Eq + Debug>(
    observations: &[ParallelObservation<V>],
) -> CheckReport {
    let mut report = CheckReport::new();
    if observations.is_empty() {
        return report;
    }

    for obs in observations {
        report.expect(
            obs.decision.is_some(),
            "parallel-consensus/termination",
            || format!("node {} never terminated", obs.node),
        );
    }

    let decided: Vec<(&NodeId, &ParallelDecision<V>)> = observations
        .iter()
        .filter_map(|o| o.decision.as_ref().map(|d| (&o.node, d)))
        .collect();

    // Agreement: all output pair-sets are identical.
    if let Some((first_node, first)) = decided.first() {
        for (node, decision) in decided.iter().skip(1) {
            report.expect(
                decision.pairs == first.pairs,
                "parallel-consensus/agreement",
                || {
                    format!(
                        "node {first_node} output {:?} but node {node} output {:?}",
                        first.pairs, decision.pairs
                    )
                },
            );
        }
    }

    // Validity: pairs shared by every correct node's input must be in every output.
    let mut common: Option<BTreeMap<InstanceId, V>> = None;
    for obs in observations {
        common = Some(match common {
            None => obs.inputs.clone(),
            Some(existing) => existing
                .into_iter()
                .filter(|(id, value)| obs.inputs.get(id) == Some(value))
                .collect(),
        });
    }
    let common = common.unwrap_or_default();
    for (node, decision) in &decided {
        for (id, value) in &common {
            report.expect(
                decision.pairs.get(id) == Some(value),
                "parallel-consensus/validity",
                || {
                    format!(
                        "pair ({id}, {value:?}) was an input of every correct node but node \
                         {node} output {:?} for it",
                        decision.pairs.get(id)
                    )
                },
            );
        }
    }

    // No fabrication: every output identifier was the input of some correct node.
    let known_ids: BTreeSet<InstanceId> = observations
        .iter()
        .flat_map(|o| o.inputs.keys().copied())
        .collect();
    for (node, decision) in &decided {
        for id in decision.pairs.keys() {
            report.expect(
                known_ids.contains(id),
                "parallel-consensus/no-fabrication",
                || {
                    format!(
                        "node {node} output a pair for identifier {id} which no correct node had \
                     as input"
                    )
                },
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(pairs: &[(InstanceId, u64)]) -> ParallelDecision<u64> {
        ParallelDecision {
            pairs: pairs.iter().copied().collect(),
            phase: 1,
            round: 9,
        }
    }

    fn obs(
        node: u64,
        inputs: &[(InstanceId, u64)],
        output: Option<&[(InstanceId, u64)]>,
    ) -> ParallelObservation<u64> {
        ParallelObservation {
            node: NodeId::new(node),
            inputs: inputs.iter().copied().collect(),
            decision: output.map(decision),
        }
    }

    #[test]
    fn identical_outputs_with_common_inputs_pass() {
        let observations = vec![
            obs(1, &[(10, 7), (11, 3)], Some(&[(10, 7), (11, 3)])),
            obs(2, &[(10, 7), (11, 3)], Some(&[(10, 7), (11, 3)])),
        ];
        check_parallel_consensus(&observations).assert_passed("common inputs");
    }

    #[test]
    fn differing_output_sets_violate_agreement() {
        let observations = vec![
            obs(1, &[(10, 7)], Some(&[(10, 7)])),
            obs(2, &[(10, 7)], Some(&[(10, 7), (11, 1)])),
        ];
        let report = check_parallel_consensus(&observations);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "parallel-consensus/agreement"));
    }

    #[test]
    fn dropping_a_universal_input_violates_validity() {
        let observations = vec![obs(1, &[(10, 7)], Some(&[])), obs(2, &[(10, 7)], Some(&[]))];
        let report = check_parallel_consensus(&observations);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "parallel-consensus/validity"));
    }

    #[test]
    fn partially_known_input_may_be_dropped() {
        // Pair (12, 5) is input only at node 1; the protocol may output or drop it,
        // as long as everyone does the same.
        let observations = vec![
            obs(1, &[(10, 7), (12, 5)], Some(&[(10, 7)])),
            obs(2, &[(10, 7)], Some(&[(10, 7)])),
        ];
        check_parallel_consensus(&observations).assert_passed("partially known pair dropped");
    }

    #[test]
    fn fabricated_identifier_is_reported() {
        let observations = vec![
            obs(1, &[(10, 7)], Some(&[(10, 7), (99, 1)])),
            obs(2, &[(10, 7)], Some(&[(10, 7), (99, 1)])),
        ];
        let report = check_parallel_consensus(&observations);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "parallel-consensus/no-fabrication"));
    }

    #[test]
    fn missing_decision_violates_termination() {
        let observations = vec![
            obs(1, &[(10, 7)], Some(&[(10, 7)])),
            obs(2, &[(10, 7)], None),
        ];
        let report = check_parallel_consensus(&observations);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "parallel-consensus/termination"));
    }

    #[test]
    fn conflicting_universal_inputs_have_no_common_pair() {
        // The two nodes have the same identifier with different opinions — the pair is
        // not "input at every correct node" in the sense of validity, so any agreeing
        // output (even dropping it) is fine.
        let observations = vec![obs(1, &[(10, 1)], Some(&[])), obs(2, &[(10, 2)], Some(&[]))];
        check_parallel_consensus(&observations).assert_passed("conflicting inputs");
    }

    #[test]
    fn empty_observations_pass_trivially() {
        let report = check_parallel_consensus::<u64>(&[]);
        assert!(report.passed());
        assert_eq!(report.checks, 0);
    }
}
