//! Recovery-correctness oracles for crash/restart executions.
//!
//! A crash-recovery subsystem can fail in ways none of the paper's theorem
//! oracles observe: a restarted node can *equivocate across its own restart*
//! (resend a round with different contents than it sent before crashing — the
//! distributed-systems analogue of a node signing two ballots), come back with
//! a state inconsistent with its pre-crash prefix, or consume the same input
//! round twice. The engine's [`RecoveryManager`] audits every replay and
//! records the evidence in one [`RestartRecord`] per completed crash/restart
//! cycle; this module turns those records into executable properties:
//!
//! * `recovery/equivocation` — replaying the write-ahead log reproduced, for
//!   every logged round, exactly the message digests the node sent before the
//!   crash (`send_conflicts == 0`). A conflict means the network saw one thing
//!   and the recovered node believes another.
//! * `recovery/state-prefix` — every round recovered from the log was actually
//!   re-stepped into the node (`replayed_rounds == recovered_rounds`), i.e. the
//!   post-restart state is the deterministic function of the pre-crash prefix.
//! * `recovery/double-consume` — the committed rounds in the log were strictly
//!   increasing (`consumed_monotone`), so no inbox was consumed twice and no
//!   round was committed out of order.
//!
//! The oracles run automatically whenever a [`RunReport`] carries a
//! [`RecoverySection`] (see [`crate::run_report`]); crash-free reports carry
//! none and contribute zero checks.
//!
//! [`RecoveryManager`]: uba_core::sim::RunReport
//! [`RunReport`]: uba_core::sim::RunReport

use uba_core::sim::{RecoverySection, RestartRecord};

use crate::report::CheckReport;

/// Runs the three recovery oracles over every restart of a run.
pub fn check_recovery(section: &RecoverySection) -> CheckReport {
    let mut report = CheckReport::new();
    for restart in &section.restarts {
        check_restart(restart, &mut report);
    }
    report
}

fn check_restart(restart: &RestartRecord, report: &mut CheckReport) {
    let node = restart.node;
    report.expect(restart.send_conflicts == 0, "recovery/equivocation", || {
        format!(
            "{node} equivocated across its restart in round {}: replaying its \
                 write-ahead log produced different messages than it sent before \
                 crashing in {} of {} replayed rounds",
            restart.restart_round, restart.send_conflicts, restart.replayed_rounds,
        )
    });
    report.expect(
        restart.replayed_rounds == restart.recovered_rounds,
        "recovery/state-prefix",
        || {
            format!(
                "{node} restarted in round {} with a state inconsistent with its \
                 pre-crash prefix: {} rounds recovered from the log but only {} \
                 re-stepped into the node",
                restart.restart_round, restart.recovered_rounds, restart.replayed_rounds,
            )
        },
    );
    report.expect(restart.consumed_monotone, "recovery/double-consume", || {
        format!(
            "{node}'s write-ahead log committed non-monotone rounds before its \
             crash in round {}: some inbox was consumed twice or committed out \
             of order",
            restart.crash_round,
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_core::sim::RestartPolicy;
    use uba_simnet::NodeId;

    fn clean_restart() -> RestartRecord {
        RestartRecord {
            node: NodeId::new(7),
            crash_round: 3,
            restart_round: 5,
            policy: RestartPolicy::Clean,
            recovered_rounds: 2,
            replayed_rounds: 2,
            send_conflicts: 0,
            dropped_records: 0,
            consumed_monotone: true,
        }
    }

    #[test]
    fn a_clean_restart_passes_all_three_oracles() {
        let section = RecoverySection {
            restarts: vec![clean_restart()],
        };
        let report = check_recovery(&section);
        assert!(report.passed());
        assert_eq!(report.checks, 3);
    }

    #[test]
    fn a_send_conflict_is_an_equivocation() {
        let section = RecoverySection {
            restarts: vec![RestartRecord {
                send_conflicts: 1,
                ..clean_restart()
            }],
        };
        let report = check_recovery(&section);
        assert!(!report.passed());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].property, "recovery/equivocation");
    }

    #[test]
    fn a_short_replay_violates_the_state_prefix() {
        let section = RecoverySection {
            restarts: vec![RestartRecord {
                replayed_rounds: 1,
                ..clean_restart()
            }],
        };
        let report = check_recovery(&section);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].property, "recovery/state-prefix");
    }

    #[test]
    fn non_monotone_commits_are_a_double_consume() {
        let section = RecoverySection {
            restarts: vec![RestartRecord {
                consumed_monotone: false,
                ..clean_restart()
            }],
        };
        let report = check_recovery(&section);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].property, "recovery/double-consume");
    }

    #[test]
    fn an_empty_section_contributes_no_checks() {
        let report = check_recovery(&RecoverySection { restarts: vec![] });
        assert!(report.passed());
        assert_eq!(report.checks, 0);
    }
}
