//! Oracle for Theorem 2: the rotor-coordinator selects a common, correct coordinator
//! in some round (a *good round*) and terminates within `O(n)` rounds (Section VI).

use std::collections::BTreeSet;
use std::fmt::Debug;

use uba_core::rotor::RotorRecord;
use uba_simnet::NodeId;

use crate::report::CheckReport;

/// The per-loop-round selection history of one correct node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotorObservation<V> {
    /// The observing node.
    pub node: NodeId,
    /// One record per loop round, in order.
    pub history: Vec<RotorRecord<V>>,
    /// Whether the node terminated (reselected a coordinator).
    pub terminated: bool,
}

/// Configuration of the rotor oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RotorCheck {
    /// Total number of nodes `n` in the system; termination must happen within this
    /// many loop rounds (Theorem 2's `O(n)` bound is at most `n` selections).
    pub n: usize,
    /// Whether every node is required to have terminated by the end of the run.
    pub expect_termination: bool,
}

/// Runs the Theorem 2 oracle. `correct` is the ground-truth set of correct node
/// identifiers (the oracle needs it to decide whether a commonly selected coordinator
/// was in fact correct).
pub fn check_rotor<V: Clone + Eq + Debug>(
    correct: &BTreeSet<NodeId>,
    observations: &[RotorObservation<V>],
    config: RotorCheck,
) -> CheckReport {
    let mut report = CheckReport::new();
    if observations.is_empty() {
        return report;
    }

    // Termination and the O(n) bound on the number of loop rounds.
    for obs in observations {
        if config.expect_termination {
            report.expect(obs.terminated, "rotor/termination", || {
                format!("node {} never reselected a coordinator", obs.node)
            });
        }
        report.expect(
            obs.history.len() <= config.n + 1,
            "rotor/round-bound",
            || {
                format!(
                    "node {} ran {} loop rounds, more than the n = {} bound",
                    obs.node,
                    obs.history.len(),
                    config.n
                )
            },
        );
        // Each node must have selected at least one correct coordinator among its
        // selections before terminating (there are at most f < n/3 faulty ones and the
        // selected set grows by one per round).
        if obs.terminated {
            report.expect(
                obs.history.iter().any(|r| correct.contains(&r.coordinator)),
                "rotor/correct-coordinator-selected",
                || {
                    format!(
                        "node {} terminated having selected only faulty coordinators: {:?}",
                        obs.node,
                        obs.history
                            .iter()
                            .map(|r| r.coordinator)
                            .collect::<Vec<_>>()
                    )
                },
            );
        }
    }

    // Good round: there is a loop round in which every correct node selected the same
    // coordinator and that coordinator is correct. Only loop rounds that every node
    // reached can qualify (a node terminates earlier than others by at most the paper's
    // relay slack, but a good round must have been witnessed by all of them).
    let shortest = observations
        .iter()
        .map(|o| o.history.len())
        .min()
        .unwrap_or(0);
    let mut good_round = None;
    for loop_round in 0..shortest {
        let selections: BTreeSet<NodeId> = observations
            .iter()
            .map(|o| o.history[loop_round].coordinator)
            .collect();
        if selections.len() == 1 {
            let coordinator = *selections.iter().next().expect("non-empty");
            if correct.contains(&coordinator) {
                good_round = Some(loop_round);
                break;
            }
        }
    }
    report.expect(good_round.is_some(), "rotor/good-round", || {
        format!(
            "no loop round had every correct node select the same correct coordinator \
             (searched {shortest} common loop rounds)"
        )
    });

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(loop_round: u64, coordinator: u64) -> RotorRecord<u64> {
        RotorRecord {
            loop_round,
            coordinator: NodeId::new(coordinator),
            accepted_opinion: None,
        }
    }

    fn correct_set(ids: &[u64]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    fn obs(node: u64, coordinators: &[u64], terminated: bool) -> RotorObservation<u64> {
        RotorObservation {
            node: NodeId::new(node),
            history: coordinators
                .iter()
                .enumerate()
                .map(|(i, &c)| record(i as u64, c))
                .collect(),
            terminated,
        }
    }

    #[test]
    fn common_correct_coordinator_passes() {
        let correct = correct_set(&[1, 2, 3]);
        let observations = vec![
            obs(1, &[9, 2, 2], true),
            obs(2, &[9, 2, 2], true),
            obs(3, &[2, 2, 2], true),
        ];
        check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n: 4,
                expect_termination: true,
            },
        )
        .assert_passed("good round in loop round 1");
    }

    #[test]
    fn no_common_round_violates_good_round() {
        let correct = correct_set(&[1, 2, 3]);
        let observations = vec![
            obs(1, &[1, 9], true),
            obs(2, &[2, 9], true),
            obs(3, &[3, 9], true),
        ];
        let report = check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n: 4,
                expect_termination: true,
            },
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "rotor/good-round"));
    }

    #[test]
    fn common_but_faulty_coordinator_is_not_a_good_round() {
        let correct = correct_set(&[1, 2]);
        // Everyone agrees on node 9 — but 9 is Byzantine, so no good round exists.
        let observations = vec![obs(1, &[9], true), obs(2, &[9], true)];
        let report = check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n: 3,
                expect_termination: true,
            },
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "rotor/good-round"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "rotor/correct-coordinator-selected"));
    }

    #[test]
    fn exceeding_the_round_bound_is_reported() {
        let correct = correct_set(&[1, 2]);
        let long: Vec<u64> = std::iter::repeat_n(1, 10).collect();
        let observations = vec![obs(1, &long, true), obs(2, &long, true)];
        let report = check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n: 3,
                expect_termination: true,
            },
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "rotor/round-bound"));
    }

    #[test]
    fn missing_termination_is_reported_only_when_expected() {
        let correct = correct_set(&[1, 2]);
        let observations = vec![obs(1, &[1, 1], true), obs(2, &[1, 1], false)];
        let strict = check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n: 3,
                expect_termination: true,
            },
        );
        assert!(strict
            .violations
            .iter()
            .any(|v| v.property == "rotor/termination"));
        let lenient = check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n: 3,
                expect_termination: false,
            },
        );
        lenient.assert_passed("partial run");
    }

    #[test]
    fn empty_observations_are_trivially_ok() {
        let report = check_rotor::<u64>(
            &correct_set(&[1]),
            &[],
            RotorCheck {
                n: 1,
                expect_termination: true,
            },
        );
        assert!(report.passed());
        assert_eq!(report.checks, 0);
    }
}
