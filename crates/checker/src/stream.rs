//! Cross-instance oracles for pipelined agreement streams.
//!
//! A stream run (see `uba_simnet::stream`) decides many overlapping agreement
//! instances in one execution. Per-instance safety is the same agreement
//! property the single-shot oracles check; what is *new* is the cross-instance
//! claim: the concatenation of decided batches **in instance order** is one
//! total order shared by every node. Because instances are totally ordered by
//! their tags at scheduling time, that reduces to three checkable properties
//! over the recorded [`StreamSection`]:
//!
//! * `stream/agreement` — within each instance, every node that decided
//!   produced the same agreement digest (per-instance safety);
//! * `stream/decide-round` — nobody decided an instance before it started, and
//!   the recorded decide round is present exactly when the output is (the
//!   bookkeeping the latency percentiles are computed from);
//! * `stream/total-order` — instance tags are unique and strictly increasing,
//!   and the section's summary flags (`agreement`, `completed`, per-instance
//!   `decided`) match the per-node evidence — so any two nodes' decided
//!   prefixes agree on every instance they share, which is exactly
//!   cross-instance total-order consistency given per-instance agreement.
//!
//! The oracle runs automatically whenever a [`RunReport`] carries a stream
//! section (see [`crate::run_report`]); single-shot reports carry none and
//! contribute zero checks.
//!
//! [`RunReport`]: uba_core::sim::RunReport

use uba_core::sim::{StreamInstanceReport, StreamSection};

use crate::report::CheckReport;

/// Runs the stream oracles over a recorded stream section.
pub fn check_stream(section: &StreamSection) -> CheckReport {
    let mut report = CheckReport::new();
    let mut previous_tag: Option<u64> = None;
    for instance in &section.instances {
        check_instance(instance, &mut report);
        report.expect(
            previous_tag.is_none_or(|previous| previous < instance.instance),
            "stream/total-order",
            || {
                format!(
                    "instance tags are not strictly increasing: {:?} is followed by {}",
                    previous_tag, instance.instance
                )
            },
        );
        previous_tag = Some(instance.instance);
    }
    let agreement = section.instances.iter().all(|i| i.agreement);
    report.expect(section.agreement == agreement, "stream/total-order", || {
        format!(
            "the section's summary claims agreement = {} but the instances say {}",
            section.agreement, agreement
        )
    });
    let completed = section.instances.iter().filter(|i| i.decided).count();
    report.expect(section.completed == completed, "stream/total-order", || {
        format!(
            "the section's summary claims {} completed instances but the instances say {}",
            section.completed, completed
        )
    });
    report
}

fn check_instance(instance: &StreamInstanceReport, report: &mut CheckReport) {
    let tag = instance.instance;
    let digests: Vec<&String> = instance
        .outputs
        .iter()
        .filter_map(|(_, digest)| digest.as_ref())
        .collect();
    report.expect(
        digests.windows(2).all(|pair| pair[0] == pair[1]),
        "stream/agreement",
        || {
            format!(
                "instance {tag} violated agreement: nodes decided {:?}",
                instance.outputs
            )
        },
    );
    let decided = instance.outputs.iter().all(|(_, digest)| digest.is_some());
    report.expect(instance.decided == decided, "stream/total-order", || {
        format!(
            "instance {tag} is flagged decided = {} but the per-node outputs say {}",
            instance.decided, decided
        )
    });
    for (node, decide_round) in &instance.decide_rounds {
        report.expect(
            decide_round.is_none_or(|round| round >= instance.start_round),
            "stream/decide-round",
            || {
                format!(
                    "{node} decided instance {tag} in round {:?}, before its start round {}",
                    decide_round, instance.start_round
                )
            },
        );
        let output_present = instance
            .outputs
            .iter()
            .any(|(id, digest)| id == node && digest.is_some());
        report.expect(
            decide_round.is_some() == output_present,
            "stream/decide-round",
            || {
                format!(
                    "{node}'s bookkeeping for instance {tag} is inconsistent: decide round \
                     {decide_round:?} but output present = {output_present}",
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::NodeId;

    fn decided_instance(tag: u64, start_round: u64, value: &str) -> StreamInstanceReport {
        let nodes = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        StreamInstanceReport {
            instance: tag,
            start_round,
            batch_size: 4,
            outputs: nodes
                .iter()
                .map(|&id| (id, Some(value.to_string())))
                .collect(),
            decide_rounds: nodes
                .iter()
                .map(|&id| (id, Some(start_round + 9)))
                .collect(),
            agreement: true,
            decided: true,
        }
    }

    fn section(instances: Vec<StreamInstanceReport>) -> StreamSection {
        let agreement = instances.iter().all(|i| i.agreement);
        let completed = instances.iter().filter(|i| i.decided).count();
        StreamSection {
            instances,
            agreement,
            completed,
        }
    }

    #[test]
    fn a_clean_stream_passes() {
        let report = check_stream(&section(vec![
            decided_instance(0, 1, "17"),
            decided_instance(1, 4, "29"),
        ]));
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn a_split_decision_violates_agreement() {
        let mut bad = decided_instance(0, 1, "17");
        bad.outputs[2].1 = Some("18".to_string());
        let report = check_stream(&section(vec![bad]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "stream/agreement"));
    }

    #[test]
    fn out_of_order_tags_violate_the_total_order() {
        let report = check_stream(&section(vec![
            decided_instance(1, 1, "17"),
            decided_instance(0, 4, "29"),
        ]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "stream/total-order"));
    }

    #[test]
    fn deciding_before_the_start_round_is_caught() {
        let mut bad = decided_instance(0, 10, "17");
        bad.decide_rounds[0].1 = Some(6);
        let report = check_stream(&section(vec![bad]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "stream/decide-round"));
    }

    #[test]
    fn a_tampered_summary_flag_is_caught() {
        let mut stream = section(vec![decided_instance(0, 1, "17")]);
        stream.completed = 0;
        let report = check_stream(&stream);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "stream/total-order"));
    }

    #[test]
    fn an_undecided_instance_is_not_a_violation() {
        let mut pending = decided_instance(0, 1, "17");
        pending.outputs[2].1 = None;
        pending.decide_rounds[2].1 = None;
        pending.decided = false;
        let report = check_stream(&section(vec![pending]));
        assert!(report.passed(), "violations: {:?}", report.violations);
    }
}
