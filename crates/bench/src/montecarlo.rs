//! Parallel Monte-Carlo sweeps over protocol executions.
//!
//! A single deterministic run answers "did the property hold for this seed"; the
//! claims of the paper are universally quantified over adversary behaviour, inputs
//! and identifier layouts, so the experiment suite repeats every scenario over many
//! seeds and reports rates and distributions. Those repetitions are embarrassingly
//! parallel (every trial owns its engine and its RNG stream), which makes them the
//! natural place to use data parallelism: [`run_trials`] fans the trials out over a
//! scope of worker threads and returns the results **in trial order**, so the
//! aggregate output is byte-for-byte identical regardless of the worker count.
//!
//! On top of the generic runner, [`ResilienceSweep`] packages the sweep used by
//! experiment E12 and the `resilience_audit` example: consensus under a chosen
//! adversary, repeated over seeds, aggregated into agreement/validity rates and a
//! round-count summary.

use uba_core::sim::{AdversaryKind, RunStatus, ScenarioExt, Simulation};
use uba_simnet::rng::derive_seed;
use uba_simnet::stats::{RateEstimate, Summary};

/// Configuration of a parallel trial sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of independent trials to run.
    pub trials: u64,
    /// Base seed; trial `i` runs with `derive_seed(base_seed, i)`.
    pub base_seed: u64,
    /// Number of worker threads. `1` runs everything on the calling thread.
    pub workers: usize,
}

impl SweepConfig {
    /// A sweep of `trials` trials on as many workers as the machine has cores
    /// (capped at 8 to keep the benchmarks well-behaved on shared machines).
    pub fn new(trials: u64, base_seed: u64) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8);
        SweepConfig {
            trials,
            base_seed,
            workers: workers.max(1),
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Runs `config.trials` independent trials of `trial(index, seed)` across
/// `config.workers` threads and returns the results in trial order.
///
/// Each trial receives its own derived seed, so the set of executions — and therefore
/// the aggregated result — does not depend on the number of workers or on scheduling.
pub fn run_trials<T, F>(config: &SweepConfig, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let trials = config.trials;
    if trials == 0 {
        return Vec::new();
    }
    if config.workers <= 1 {
        return (0..trials)
            .map(|i| trial(i, derive_seed(config.base_seed, i)))
            .collect();
    }

    let workers = config.workers.min(trials as usize);
    let mut indexed: Vec<(u64, T)> = std::thread::scope(|scope| {
        let trial = &trial;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    // Static striping: worker w runs trials w, w + workers, …
                    // Every worker touches a spread of indices, so uneven trial costs
                    // (e.g. larger n later in a sweep) still balance reasonably.
                    let mut results = Vec::new();
                    let mut index = worker as u64;
                    while index < trials {
                        results.push((index, trial(index, derive_seed(config.base_seed, index))));
                        index += workers as u64;
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("trial worker must not panic"))
            .collect()
    });

    indexed.sort_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

/// One consensus trial's outcome inside a resilience sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConsensusTrial {
    /// Whether all correct nodes decided the same value.
    pub agreement: bool,
    /// Whether the decided value was an input of some correct node (with the
    /// unanimity rule applied).
    pub validity: bool,
    /// Rounds until the last correct node decided.
    pub rounds: u64,
    /// Point-to-point messages sent by correct nodes.
    pub messages: u64,
}

/// Aggregated outcome of a resilience sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceOutcome {
    /// Fraction of trials with agreement.
    pub agreement: RateEstimate,
    /// Fraction of trials with validity.
    pub validity: RateEstimate,
    /// Distribution of termination rounds.
    pub rounds: Summary,
    /// Distribution of correct-node message counts.
    pub messages: Summary,
}

/// A Monte-Carlo sweep of the consensus protocol under one adversary strategy.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceSweep {
    /// Number of correct nodes per trial.
    pub correct: usize,
    /// Number of Byzantine identities per trial.
    pub byzantine: usize,
    /// Adversary strategy driving the Byzantine identities.
    pub adversary: AdversaryKind,
    /// Sweep configuration (trials, seed, workers).
    pub config: SweepConfig,
}

impl ResilienceSweep {
    /// Runs the sweep. Inputs are a deterministic half/half split of 0s and 1s.
    ///
    /// The sweep is also meant to be pointed *outside* the `n > 3f` bound (that is the
    /// whole point of an audit), where a trial may legitimately never terminate; such
    /// a trial is recorded as failing agreement and validity with the round cap as its
    /// round count, rather than aborting the sweep.
    pub fn run(&self) -> ResilienceOutcome {
        let inputs: Vec<u64> = (0..self.correct).map(|i| (i % 2) as u64).collect();
        let trials = run_trials(&self.config, |_, seed| {
            let report = Simulation::scenario()
                .correct(self.correct)
                .byzantine(self.byzantine)
                .seed(seed)
                .max_rounds(400)
                .adversary(self.adversary)
                .consensus(&inputs)
                .run()
                .expect("consensus runs never violate engine rules");
            match report.status {
                RunStatus::Completed { rounds } => {
                    let section = report.consensus.expect("consensus section");
                    ConsensusTrial {
                        agreement: section.agreement,
                        validity: section.validity,
                        rounds,
                        messages: report.messages.correct,
                    }
                }
                // A stuck trial (legitimate outside n > 3f) counts against both
                // properties with the round cap as its cost.
                RunStatus::MaxRoundsExceeded { limit } => ConsensusTrial {
                    agreement: false,
                    validity: false,
                    rounds: limit,
                    messages: 0,
                },
            }
        });
        aggregate(&trials)
    }
}

/// Aggregates raw trials into rates and summaries.
pub fn aggregate(trials: &[ConsensusTrial]) -> ResilienceOutcome {
    let agreement = RateEstimate::new(
        trials.iter().filter(|t| t.agreement).count() as u64,
        trials.len() as u64,
    );
    let validity = RateEstimate::new(
        trials.iter().filter(|t| t.validity).count() as u64,
        trials.len() as u64,
    );
    let rounds = Summary::of_u64(&trials.iter().map(|t| t.rounds).collect::<Vec<_>>());
    let messages = Summary::of_u64(&trials.iter().map(|t| t.messages).collect::<Vec<_>>());
    ResilienceOutcome {
        agreement,
        validity,
        rounds,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_trials_preserves_trial_order_and_count() {
        let config = SweepConfig {
            trials: 25,
            base_seed: 9,
            workers: 4,
        };
        let results = run_trials(&config, |index, _seed| index * 2);
        assert_eq!(results, (0..25).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_trials_is_independent_of_worker_count() {
        let sequential = SweepConfig {
            trials: 16,
            base_seed: 3,
            workers: 1,
        };
        let parallel = SweepConfig {
            trials: 16,
            base_seed: 3,
            workers: 5,
        };
        let a = run_trials(&sequential, |index, seed| (index, seed));
        let b = run_trials(&parallel, |index, seed| (index, seed));
        assert_eq!(
            a, b,
            "derived seeds and ordering must not depend on workers"
        );
    }

    #[test]
    fn run_trials_handles_zero_trials_and_more_workers_than_trials() {
        let empty = SweepConfig {
            trials: 0,
            base_seed: 1,
            workers: 4,
        };
        assert!(run_trials(&empty, |_, _| 1u64).is_empty());
        let tiny = SweepConfig {
            trials: 2,
            base_seed: 1,
            workers: 16,
        };
        assert_eq!(run_trials(&tiny, |index, _| index).len(), 2);
    }

    #[test]
    fn sweep_config_constructor_clamps_workers() {
        let config = SweepConfig::new(10, 1).with_workers(0);
        assert_eq!(config.workers, 1);
        assert!(SweepConfig::new(10, 1).workers >= 1);
    }

    #[test]
    fn resilience_sweep_reports_full_agreement_within_resiliency() {
        let sweep = ResilienceSweep {
            correct: 5,
            byzantine: 1,
            adversary: AdversaryKind::SplitVote,
            config: SweepConfig {
                trials: 8,
                base_seed: 77,
                workers: 4,
            },
        };
        let outcome = sweep.run();
        assert_eq!(outcome.agreement.trials, 8);
        assert!(
            (outcome.agreement.rate() - 1.0).abs() < 1e-12,
            "n > 3f must always agree"
        );
        assert!((outcome.validity.rate() - 1.0).abs() < 1e-12);
        assert!(outcome.rounds.mean > 0.0);
        assert!(outcome.messages.min > 0.0);
    }

    #[test]
    fn aggregate_counts_rates_correctly() {
        let trials = vec![
            ConsensusTrial {
                agreement: true,
                validity: true,
                rounds: 8,
                messages: 100,
            },
            ConsensusTrial {
                agreement: false,
                validity: true,
                rounds: 12,
                messages: 150,
            },
        ];
        let outcome = aggregate(&trials);
        assert_eq!(outcome.agreement.successes, 1);
        assert_eq!(outcome.validity.successes, 2);
        assert_eq!(outcome.rounds.max, 12.0);
    }
}
