//! Long-horizon soak runs under continuous crash/restart churn
//! (`BENCH_soak.json`).
//!
//! The crash-recovery subsystem (`uba_simnet::wal`, `docs/RECOVERY.md`) adds a
//! per-node write-ahead log and a restart path to both engines; the failure
//! mode such machinery invites is not a wrong answer on round 3 but a slow one
//! on round 3000 — logs that never compact, inboxes that accumulate envelopes
//! for nodes that keep leaving, restart bookkeeping that grows per cycle. The
//! soak driver runs the dynamic total-ordering workload at `n = 128` for
//! thousands of rounds (`n = 64` for hundreds of rounds in the CI smoke — the
//! horizon, not the population, is the soak axis; see [`SoakConfig::full`])
//! while a rotating set of correct nodes crashes and restarts every few
//! rounds — the restart policy itself rotates through [`SOAK_POLICIES`]:
//! clean replays and all three write-ahead-log fault shapes (torn tail, lost
//! unsynced suffix, corrupt record), with [`SoakConfig::sync_every`] raised
//! above 1 so the faults have an unsynced suffix to bite. Engine-level
//! retired-tag traffic GC runs throughout (`Harness::traffic_gc`), pruning
//! queued envelopes for instances every live node has finalised. Each run
//! samples two things per round:
//!
//! * a **peak-RSS proxy** — live [`Shared`](uba_simnet::Shared) payload
//!   allocations ([`uba_simnet::shared::live_allocations`]) plus the envelopes
//!   queued in engine inboxes plus the records held across the write-ahead
//!   logs. A leak shows up here long before wall-clock memory measurements
//!   would notice it, and deterministically;
//! * the **per-round step latency**, reported as p50/p95/p99 percentiles,
//!   plus a **slope gate**: the median step latency over the last third of
//!   the run must stay within [`LATENCY_SLOPE_MARGIN`] of the middle third's
//!   median (warm-up excluded). Percentiles drifting against the *committed*
//!   artifact are machine-dependent and only warned about; the slope compares
//!   the run against *itself*, so a run that gets slower round over round —
//!   the time-shaped twin of a memory leak — hard-fails.
//!
//! The proxy is a sawtooth by construction — logs fill and compact, inboxes
//! fill and drain — so the leak gate discards the first third of the run as
//! warm-up (logs filling from empty look exactly like a leak) and compares
//! the **floor** (minimum) of the proxy over the middle third against the
//! floor over the last third: compaction cycles leave the floor flat, while a
//! true leak raises it round over round. A run whose floor keeps climbing
//! fails ([`SoakRow::leak`]); the sawtooth's peak is recorded alongside as
//! the headline RSS proxy.
//! Every run also replays the recovery oracles over its final report
//! ([`SoakRow::oracles_passed`]) — a soak that survives on memory but
//! equivocates across a restart is still a failure. Both engines produce a row
//! (`engine: "sync"` / `"event"`), and the whole file fails if any row does.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- soak [--smoke]
//! ```

use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use uba_checker::attach_verdicts;
use uba_core::sim::{TotalOrderFactory, TotalOrderPlan};
use uba_simnet::{
    ChurnEvent, ChurnSchedule, EngineKind, Harness, IdSpace, NodeId, RestartPolicy, Simulation,
    WalConfig, WalFault,
};

use crate::table::Table;

/// Base seed of the soak grid (distinct from the baseline and scaling seeds so
/// the three files never share identifier layouts).
pub const SEED: u64 = 0x50AC_5EED;

/// Minimum samples each leak-gate window must hold for the floor comparison to
/// mean anything. Below this the gate cannot distinguish a leak from noise —
/// `third = live.len() / 3` can even reach 0, making both window floors vacuous
/// — so the row is reported as [`SoakRow::insufficient_samples`] and fails
/// instead of silently passing.
pub const MIN_WINDOW_SAMPLES: usize = 8;

/// The restart-policy rotation of the soak churn: every completed
/// crash/restart cycle uses the next policy, so a long run exercises clean
/// replays and every write-ahead-log fault shape continuously. Faults only
/// damage the unsynced suffix (≤ [`SoakConfig::sync_every`] rounds of
/// records), far inside the ~5n/2-round finality window, so replay from the
/// durable prefix always converges — the recovery oracles hold the soak to
/// that.
pub const SOAK_POLICIES: [RestartPolicy; 4] = [
    RestartPolicy::Clean,
    RestartPolicy::Fault(WalFault::TornTail),
    RestartPolicy::Fault(WalFault::LoseUnsynced),
    RestartPolicy::Fault(WalFault::Corrupt),
];

/// The latency slope gate's margin: the last third's median step latency may
/// exceed the middle third's by at most this factor plus
/// [`LATENCY_SLOPE_FLOOR_US`] (medians are robust, but short windows on a
/// noisy box still jitter). A run that degrades beyond this is getting slower
/// as it ages — the failure mode the soak exists to catch.
pub const LATENCY_SLOPE_MARGIN: f64 = 2.0;

/// Absolute slack added on top of [`LATENCY_SLOPE_MARGIN`], microseconds.
pub const LATENCY_SLOPE_FLOOR_US: f64 = 500.0;

/// The shape of one soak run: how many nodes, for how long, and how hard the
/// crash/restart churn hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoakConfig {
    /// Correct-node population (the soak runs without Byzantine identities —
    /// the adversary under test is time, not equivocation).
    pub nodes: usize,
    /// Rounds to execute.
    pub rounds: u64,
    /// A crash is scheduled every `crash_period` rounds.
    pub crash_period: u64,
    /// Rounds a victim stays down before its clean restart.
    pub downtime: u64,
    /// Distinct victims the crash schedule rotates over.
    pub victims: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Write-ahead-log records per node before the round commit folds the log
    /// into a fresh snapshot base ([`WalConfig::compact_after`]). A restart
    /// replays everything since the last compaction, so this — not the
    /// horizon — must bound replay cost: the library default of 1024 records
    /// never triggered inside a 300-round smoke, which made every restart
    /// replay the whole run so far and pushed p50 step latency near a second.
    pub compact_after: usize,
    /// Fsync cadence ([`WalConfig::sync_every`]): round commits between
    /// syncs. The library default of 1 makes every [`WalFault`] a no-op
    /// (faults only damage the unsynced suffix), so the soak raises it — the
    /// rotating faulty restarts then each lose up to `sync_every - 1` rounds
    /// of records and must still replay to oracle-accepted state.
    pub sync_every: u64,
}

impl SoakConfig {
    /// The CI smoke shape: hundreds of rounds at `n = 64`.
    pub fn smoke() -> Self {
        SoakConfig {
            nodes: 64,
            rounds: 300,
            crash_period: 5,
            downtime: 2,
            victims: 8,
            seed: SEED,
            compact_after: 64,
            sync_every: 2,
        }
    }

    /// The full long-horizon shape: `n = 128` held for 2000 rounds under the
    /// rotating clean/faulty restart churn (~12 write-ahead-log fill/compact
    /// cycles per leak-gate window, hundreds of completed crash/restart
    /// cycles, every fault shape exercised ~100 times).
    ///
    /// The horizon, not the population, is the primary soak axis: a leak or a
    /// compaction failure accumulates per round, so stretching rounds is what
    /// exposes it. `n = 128` doubles the previous frontier — affordable since
    /// the stream plane's projection demux removed the per-delivery payload
    /// clone from the total-order hot path; per-round cost still grows ~n³,
    /// which is what caps the population here.
    pub fn full() -> Self {
        SoakConfig {
            nodes: 128,
            rounds: 2_000,
            crash_period: 5,
            downtime: 2,
            victims: 16,
            seed: SEED,
            compact_after: 64,
            sync_every: 4,
        }
    }

    /// A tiny shape for the integration tests (a second, not minutes). Long
    /// enough that the write-ahead logs complete at least one fill/compact
    /// cycle per third of the run — the floor-based leak gate needs a full
    /// sawtooth period inside each window it compares.
    pub fn tiny() -> Self {
        SoakConfig {
            nodes: 8,
            rounds: 400,
            crash_period: 5,
            downtime: 2,
            victims: 3,
            seed: SEED,
            compact_after: 64,
            sync_every: 2,
        }
    }
}

/// One soak run: one engine, one population, one long churn-ridden execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SoakRow {
    /// Which engine executed the run (`"sync"` or `"event"`).
    pub engine: String,
    /// Correct-node population.
    pub nodes: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Crash/restart cycles completed (restart records written).
    pub restarts: usize,
    /// Median per-round step latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-round step latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile per-round step latency, microseconds.
    pub p99_us: f64,
    /// Floor (minimum) of the memory proxy over the middle third of the run
    /// (the first third is warm-up and not compared).
    pub live_mid_third: f64,
    /// Floor (minimum) of the memory proxy over the last third of the run.
    pub live_last_third: f64,
    /// Peak of the memory proxy over the whole run — the RSS-proxy headline.
    pub live_peak: f64,
    /// `live_last_third / live_mid_third` — the monotone-growth signal.
    pub growth: f64,
    /// Whether the leak gate tripped (the last third's floor meaningfully
    /// above the first's).
    pub leak: bool,
    /// Whether the run was too short for the leak gate to judge: each
    /// comparison window held fewer than [`MIN_WINDOW_SAMPLES`] samples, so
    /// the floors are noise (or, below 3 samples, literally empty). Such a
    /// row fails — "too short to check" must not read as "no leak".
    pub insufficient_samples: bool,
    /// Whether the recovery oracles accepted the final report.
    pub oracles_passed: bool,
    /// Median step latency over the middle third of the run, microseconds
    /// (the slope gate's baseline window; the first third is warm-up).
    #[serde(default)]
    pub lat_mid_third_us: f64,
    /// Median step latency over the last third of the run, microseconds.
    #[serde(default)]
    pub lat_last_third_us: f64,
    /// `lat_last_third_us / lat_mid_third_us` — the slowdown signal.
    #[serde(default)]
    pub lat_slope: f64,
    /// Whether the slope gate tripped: the run got meaningfully slower as it
    /// aged (last third beyond [`LATENCY_SLOPE_MARGIN`] × the middle third
    /// plus [`LATENCY_SLOPE_FLOOR_US`]).
    #[serde(default)]
    pub lat_drift: bool,
    /// Wall-clock of the whole run, milliseconds (documentation, not a gate).
    pub wall_ms: f64,
}

impl SoakRow {
    /// Whether the row passes its gates: enough samples to judge, flat
    /// memory, flat step latency, and clean oracles.
    pub fn passed(&self) -> bool {
        !self.leak && !self.insufficient_samples && !self.lat_drift && self.oracles_passed
    }
}

/// The serialised soak result (`BENCH_soak.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SoakFile {
    /// Seed the runs derive from.
    pub seed: u64,
    /// Whether this is the CI smoke shape.
    pub smoke: bool,
    /// One row per engine.
    pub rows: Vec<SoakRow>,
}

impl SoakFile {
    /// Whether every row passes its gates.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(SoakRow::passed)
    }
}

/// The continuous crash/restart schedule of a soak run: every
/// `crash_period` rounds the next victim (rotating over `victims`) crashes,
/// restarting `downtime` rounds later under the next [`SOAK_POLICIES`] entry
/// — clean, torn tail, lost suffix, corrupt record, repeating. Cycles that
/// would not complete inside the round budget are not scheduled — a node left
/// down at the end of the run would turn the leak gate into a population
/// measurement.
pub fn soak_churn(
    victims: &[NodeId],
    rounds: u64,
    crash_period: u64,
    downtime: u64,
) -> ChurnSchedule {
    let mut churn = ChurnSchedule::empty();
    let mut slot = 0usize;
    let mut round = 2u64;
    while round + downtime < rounds && !victims.is_empty() {
        let victim = victims[slot % victims.len()];
        churn = churn.with(round, ChurnEvent::Crash(victim)).with(
            round + downtime,
            ChurnEvent::Restart {
                id: victim,
                policy: SOAK_POLICIES[slot % SOAK_POLICIES.len()],
            },
        );
        slot += 1;
        round += crash_period;
    }
    churn
}

/// Index of the `p`-th percentile (0.0 ≤ p ≤ 1.0) in an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The floor of a window: its minimum, or 0 when empty. Sawtooth signals
/// (fill/compact logs, fill/drain inboxes) keep a flat floor; leaks raise it.
fn floor(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Builds the soak workload harness: the dynamic total-ordering protocol under
/// rotating clean/faulty crash/restart churn, with the write-ahead logs
/// syncing every [`SoakConfig::sync_every`] commits (so faults have a suffix
/// to damage) and compacting every [`SoakConfig::compact_after`] records (the
/// replay-cost bound), and engine-level retired-tag traffic GC on.
pub fn build_soak_harness(
    config: &SoakConfig,
    engine: Option<EngineKind>,
) -> Harness<TotalOrderFactory<u64>> {
    let ids = IdSpace::default().generate(config.nodes, config.seed);
    // Victims rotate over indices 1.. so the event-submitting founder (index 0)
    // is always up when the workload hands it an event.
    let victims: Vec<NodeId> = (1..=config.victims.min(config.nodes.saturating_sub(1)))
        .map(|i| ids[i])
        .collect();
    let churn = soak_churn(
        &victims,
        config.rounds,
        config.crash_period,
        config.downtime,
    );
    // A steady total-ordering workload: founder 0 submits one event every
    // other round, so chains keep growing for the whole horizon.
    let mut plan = TotalOrderPlan::rounds(config.rounds);
    for round in (1..config.rounds).step_by(2) {
        plan = plan.event(round, 0, round);
    }
    let mut scenario = Simulation::scenario()
        .correct(config.nodes)
        .seed(config.seed)
        .max_rounds(config.rounds + 1)
        .churn(churn);
    if let Some(kind) = engine {
        scenario = scenario.engine(kind);
    }
    scenario
        .build(TotalOrderFactory::new(plan))
        .wal_config(WalConfig {
            compact_after: config.compact_after,
            sync_every: config.sync_every,
        })
        .traffic_gc()
}

/// Executes one soak run and reduces it to a [`SoakRow`]. `engine: None` is
/// the synchronous engine, `Some(EngineKind::event())` the discrete-event one.
pub fn run_soak(config: &SoakConfig, engine: Option<EngineKind>) -> SoakRow {
    let mut harness = build_soak_harness(config, engine.clone());

    let mut latencies_us: Vec<f64> = Vec::with_capacity(config.rounds as usize);
    let mut live: Vec<f64> = Vec::with_capacity(config.rounds as usize);
    let started = Instant::now();
    while !harness.stopped() && harness.rounds_executed() < config.rounds {
        let step = Instant::now();
        harness.step_round().expect("soak schedules are admissible");
        latencies_us.push(step.elapsed().as_secs_f64() * 1e6);
        let proxy = uba_simnet::shared::live_allocations() as usize
            + harness.queued_envelopes()
            + harness.wal_entries();
        live.push(proxy as f64);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut report = harness.report_now();
    attach_verdicts(&mut report);
    let restarts = harness.recovery_restarts().len();

    let third = live.len() / 3;
    let insufficient_samples = third < MIN_WINDOW_SAMPLES;
    let live_mid_third = floor(&live[third..2 * third]);
    let live_last_third = floor(&live[live.len() - third..]);
    let live_peak = live.iter().copied().fold(0.0, f64::max);
    let growth = if live_mid_third > 0.0 {
        live_last_third / live_mid_third
    } else {
        1.0
    };
    // The allocation counter is process-global, so tolerate a small absolute
    // drift (concurrent test threads allocate payloads too) on top of the
    // relative margin; a real leak accumulates every round and dwarfs both.
    // Windows below MIN_WINDOW_SAMPLES cannot support the comparison at all;
    // they fail via `insufficient_samples` rather than judging leakiness.
    let leak = !insufficient_samples && live_last_third > live_mid_third * 1.25 + 256.0;

    // The latency slope gate over the same thirds the leak gate uses: medians,
    // not floors, because step latency is noise around a level, not a
    // sawtooth. A run that ages into slowness fails against itself — no
    // committed artifact or machine baseline involved.
    let window_median = |window: &[f64]| -> f64 {
        let mut sorted = window.to_vec();
        sorted.sort_by(f64::total_cmp);
        percentile(&sorted, 0.50)
    };
    let lat_mid_third_us = window_median(&latencies_us[third..2 * third]);
    let lat_last_third_us = window_median(&latencies_us[latencies_us.len() - third..]);
    let lat_slope = if lat_mid_third_us > 0.0 {
        lat_last_third_us / lat_mid_third_us
    } else {
        1.0
    };
    let lat_drift = !insufficient_samples
        && lat_last_third_us > lat_mid_third_us * LATENCY_SLOPE_MARGIN + LATENCY_SLOPE_FLOOR_US;

    let mut sorted = latencies_us.clone();
    sorted.sort_by(f64::total_cmp);
    SoakRow {
        engine: match engine {
            None => "sync".to_string(),
            Some(_) => "event".to_string(),
        },
        nodes: config.nodes,
        rounds: harness.rounds_executed(),
        restarts,
        p50_us: percentile(&sorted, 0.50),
        p95_us: percentile(&sorted, 0.95),
        p99_us: percentile(&sorted, 0.99),
        live_mid_third,
        live_last_third,
        live_peak,
        growth,
        leak,
        insufficient_samples,
        oracles_passed: report.verdicts_passed(),
        lat_mid_third_us,
        lat_last_third_us,
        lat_slope,
        lat_drift,
        wall_ms,
    }
}

/// Compares a fresh soak run's step-latency percentiles against the committed
/// artifact, returning one human-readable line per regression. The margin is
/// deliberately generous — committed percentiles × `factor`, plus `floor_us`
/// to absorb scheduler noise on short rows — because these are wall-clock
/// numbers: CI records the drift lines without hard-failing on them (the same
/// policy `scaling-smoke` applies to wall-clock columns), while a developer
/// chasing a latency regression runs the gate strictly.
pub fn latency_drift(
    current: &SoakFile,
    committed: &SoakFile,
    factor: f64,
    floor_us: f64,
) -> Vec<String> {
    let mut drift = Vec::new();
    for row in &current.rows {
        let Some(base) = committed
            .rows
            .iter()
            .find(|base| base.engine == row.engine && base.nodes == row.nodes)
        else {
            drift.push(format!(
                "latency gate: no committed row for engine {} at n = {}",
                row.engine, row.nodes
            ));
            continue;
        };
        for (name, fresh, recorded) in [
            ("p95", row.p95_us, base.p95_us),
            ("p99", row.p99_us, base.p99_us),
        ] {
            let bound = recorded * factor + floor_us;
            if fresh > bound {
                drift.push(format!(
                    "latency gate: {} n={} {name} = {fresh:.1}µs exceeds committed \
                     {recorded:.1}µs × {factor} + {floor_us:.0}µs = {bound:.1}µs",
                    row.engine, row.nodes
                ));
            }
        }
    }
    drift
}

/// Runs the soak shape on both engines and assembles the file.
pub fn soak_file(smoke: bool) -> SoakFile {
    let config = if smoke {
        SoakConfig::smoke()
    } else {
        SoakConfig::full()
    };
    soak_file_with(smoke, &config, &[None, Some(EngineKind::event())])
}

/// [`soak_file`] with an explicit config and engine list (the `--engine` flag
/// and the integration tests).
pub fn soak_file_with(
    smoke: bool,
    config: &SoakConfig,
    engines: &[Option<EngineKind>],
) -> SoakFile {
    SoakFile {
        seed: config.seed,
        smoke,
        rows: engines
            .iter()
            .map(|engine| run_soak(config, engine.clone()))
            .collect(),
    }
}

/// Writes `BENCH_soak.json` (or `path`) and returns the serialised JSON.
pub fn write_soak(path: &Path, smoke: bool) -> std::io::Result<String> {
    let file = soak_file(smoke);
    let json = serde_json::to_string_pretty(&file).expect("soak files serialise");
    std::fs::write(path, &json)?;
    Ok(json)
}

/// Renders the file as the table the `experiments` binary prints.
pub fn soak_table(file: &SoakFile) -> Table {
    let mut table = Table::new(
        format!(
            "soak: long-horizon crash/restart churn (seed {:#x}, smoke = {})",
            file.seed, file.smoke
        ),
        &[
            "engine",
            "n",
            "rounds",
            "restarts",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "floor 2/3",
            "floor 3/3",
            "peak",
            "growth",
            "lat slope",
            "verdict",
        ],
    );
    for row in &file.rows {
        table.push_row(vec![
            row.engine.clone(),
            row.nodes.to_string(),
            row.rounds.to_string(),
            row.restarts.to_string(),
            format!("{:.1}", row.p50_us),
            format!("{:.1}", row.p95_us),
            format!("{:.1}", row.p99_us),
            format!("{:.1}", row.live_mid_third),
            format!("{:.1}", row.live_last_third),
            format!("{:.1}", row.live_peak),
            format!("{:.3}", row.growth),
            format!("{:.3}", row.lat_slope),
            if row.passed() {
                "ok".to_string()
            } else if row.insufficient_samples {
                "TOO SHORT".to_string()
            } else if row.leak {
                "LEAK".to_string()
            } else if row.lat_drift {
                "SLOW".to_string()
            } else {
                "ORACLE FAIL".to_string()
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_churn_schedule_rotates_victims_and_completes_every_cycle() {
        let victims: Vec<NodeId> = (1..=3).map(NodeId::new).collect();
        let churn = soak_churn(&victims, 30, 5, 2);
        assert!(churn.has_crash_events());
        // Every crash has its restart inside the horizon.
        let crashes = churn
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Crash(_)))
            .count();
        let restarts = churn
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Restart { .. }))
            .count();
        assert_eq!(crashes, restarts);
        assert!(churn.horizon() < 30);
        // All three victims get their turn.
        assert_eq!(churn.crash_cycle_ids().len(), 3);
        // The restart policy rotates: a long enough schedule exercises clean
        // replays and faulty ones.
        let policies: Vec<RestartPolicy> = churn
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                ChurnEvent::Restart { policy, .. } => Some(*policy),
                _ => None,
            })
            .collect();
        assert!(policies.contains(&RestartPolicy::Clean));
        assert!(policies
            .iter()
            .any(|p| matches!(p, RestartPolicy::Fault(_))));
        assert_eq!(&policies[..4], &SOAK_POLICIES);
        assert_eq!(
            churn.first_resiliency_violation(8, 0),
            None,
            "rotating single crashes keep n > 3f trivially at f = 0"
        );
    }

    #[test]
    fn a_tiny_soak_run_is_flat_and_clean_on_both_engines() {
        let config = SoakConfig::tiny();
        for engine in [None, Some(EngineKind::event())] {
            let row = run_soak(&config, engine);
            assert_eq!(row.rounds, config.rounds);
            assert!(
                row.restarts > SOAK_POLICIES.len(),
                "churn cycles through every restart policy at least once: {row:?}"
            );
            assert!(row.oracles_passed, "recovery oracles clean: {row:?}");
            assert!(!row.leak, "no monotone growth: {row:?}");
            assert!(!row.lat_drift, "no round-over-round slowdown: {row:?}");
            assert!(row.lat_slope > 0.0, "slope computed: {row:?}");
            assert!(row.p50_us > 0.0 && row.p99_us >= row.p50_us);
        }
    }

    #[test]
    fn the_slope_gate_fails_runs_that_age_into_slowness() {
        let config = SoakConfig::tiny();
        let mut file = soak_file_with(true, &config, &[None]);
        assert!(file.passed());
        let row = &mut file.rows[0];
        row.lat_last_third_us =
            row.lat_mid_third_us * LATENCY_SLOPE_MARGIN + LATENCY_SLOPE_FLOOR_US + 1.0;
        row.lat_drift = true;
        assert!(!file.passed(), "a slowing run must fail the file");
        assert!(format!("{}", soak_table(&file)).contains("SLOW"));
    }

    #[test]
    fn soak_files_serialise_and_gate_on_their_rows() {
        let config = SoakConfig::tiny();
        let file = soak_file_with(true, &config, &[None]);
        assert_eq!(file.rows.len(), 1);
        assert_eq!(file.rows[0].engine, "sync");
        assert!(file.passed());
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: SoakFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, file);
        let mut failing = file.clone();
        failing.rows[0].leak = true;
        assert!(!failing.passed());
        // The table renders a row per engine without panicking.
        assert!(format!("{}", soak_table(&file)).contains("sync"));
    }

    #[test]
    fn runs_too_short_for_the_leak_gate_fail_explicitly() {
        // 12 samples → windows of 4 < MIN_WINDOW_SAMPLES: the old gate would
        // have reported growth 1.0 / leak false and silently passed.
        let config = SoakConfig {
            rounds: 12,
            ..SoakConfig::tiny()
        };
        let row = run_soak(&config, None);
        assert!(row.insufficient_samples, "windows of 4 are not judgeable");
        assert!(!row.leak, "no leak verdict without samples");
        assert!(
            !row.passed(),
            "too-short rows must fail, not pass vacuously"
        );
        assert!(
            format!("{}", soak_table(&soak_file_with(true, &config, &[None])))
                .contains("TOO SHORT")
        );
    }

    #[test]
    fn restart_replay_cost_is_bounded_by_the_compaction_period_not_the_horizon() {
        // Doubling the horizon must not grow the worst-case restart replay:
        // with `compact_after` well below the horizon, every restart replays at
        // most one compaction period of records, however long the run has been
        // going. (With the library default of 1024 records this was linear —
        // every restart replayed the whole run so far.)
        let max_replay = |rounds: u64| -> u64 {
            let config = SoakConfig {
                rounds,
                ..SoakConfig::tiny()
            };
            let mut harness = build_soak_harness(&config, None);
            while !harness.stopped() && harness.rounds_executed() < config.rounds {
                harness.step_round().expect("soak schedules are admissible");
            }
            harness
                .recovery_restarts()
                .iter()
                .map(|restart| restart.replayed_rounds)
                .max()
                .expect("the churn schedule restarts nodes")
        };
        let short = max_replay(150);
        let long = max_replay(300);
        assert!(short > 0, "restarts replay at least the round in flight");
        assert!(
            long <= short,
            "replay cost grew with the horizon: max {long} rounds at 300 vs \
             {short} at 150 — compaction is not bounding the log"
        );
    }

    #[test]
    fn the_latency_gate_flags_only_percentiles_beyond_the_margin() {
        let config = SoakConfig::tiny();
        let committed = soak_file_with(true, &config, &[None]);
        let mut current = committed.clone();
        assert_eq!(
            latency_drift(&current, &committed, 3.0, 2_000.0),
            Vec::<String>::new(),
            "identical files are inside any margin"
        );
        current.rows[0].p99_us = committed.rows[0].p99_us * 3.0 + 2_001.0;
        let drift = latency_drift(&current, &committed, 3.0, 2_000.0);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("p99"), "{drift:?}");
        current.rows[0].engine = "exotic".to_string();
        let missing = latency_drift(&current, &committed, 3.0, 2_000.0);
        assert!(missing[0].contains("no committed row"), "{missing:?}");
    }

    #[test]
    fn percentiles_read_the_sorted_tail() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
