//! Wall-clock scaling sweep (`BENCH_scaling.json`).
//!
//! `BENCH_baseline.json` records *what* the protocols do (rounds, messages,
//! verdicts) on a small grid; this module records *how fast the engine executes
//! them* as the system grows. [`scaling_file`] runs a broadcast-heavy grid —
//! id-only consensus and the phase-king baseline up to `n = 256`, reliable
//! broadcast at the largest sizes — through the unified `Simulation` driver and
//! measures the wall-clock time of every run, including the engine's per-phase
//! split. Phases are *named*, not a fixed schema: the synchronous engine reports
//! `step` / `produce` / `adversary` / `deliver`, the discrete-event engine adds
//! `schedule` and `dispatch` slots (see `docs/ENGINE.md` for how to read them;
//! the [`PhaseSplit::deliver_share`] column is the zero-copy headline). At
//! `n = 128` the recorded grid re-runs the consensus scenarios through the
//! discrete-event engine under zero-jitter timing, asserting identical counts
//! and recording the scheduler's overhead as `engine: "event"` rows. Regenerate
//! with:
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- scaling
//! ```
//!
//! Two consumers read the result differently:
//!
//! * **Perf tracking** reads the `wall_ms` column and the [`SpeedupRow`]s, which
//!   compare the current engine against the recorded pre-rewrite reference
//!   timings (see [`PRE_CHANGE_REFERENCE_MS`]). Wall-clock is machine-dependent,
//!   so these numbers are documentation, not a gate.
//! * **CI** runs `experiments -- scaling --quick`, which executes the small-`n`
//!   prefix of the grid plus the full `BENCH_baseline.json` grid and **fails on
//!   any drift in rounds, message or delivery counts** — the deterministic part
//!   of the result. This is the regression guard that keeps engine rewrites
//!   behaviour-preserving.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use uba_baselines::PhaseKingFactory;
use uba_core::sim::{AdversaryKind, Harness, ProtocolFactory, RunReport, ScenarioExt, Simulation};
use uba_simnet::{EngineKind, IdSpace, PhaseTimings};

use crate::baseline::{baseline_file, BaselineFile};

/// Base seed of the scaling grid (distinct from the baseline grid's seed so the
/// two files never share identifier layouts).
pub const SEED: u64 = 0x5CA1E;

/// System sizes of the full grid. `--quick` stops at 32 to keep CI fast.
pub const FULL_SIZES: &[usize] = &[8, 16, 32, 64, 128, 256];

/// System sizes exercised by `--quick`.
pub const QUICK_SIZES: &[usize] = &[8, 16, 32];

/// Wall-clock (milliseconds) of the grid's scenarios measured **before** the
/// broadcast-aware engine rewrite (eager per-recipient expansion, `Vec::contains`
/// membership checks and O(k²) inbox dedup), on the machine that recorded
/// `BENCH_scaling.json`. Scenarios are keyed as `protocol/adversary/n`. These
/// reference points are what the ≥5× speedup claim in the scaling file is
/// measured against; scenarios missing here produce no [`SpeedupRow`].
pub const PRE_CHANGE_REFERENCE_MS: &[(&str, f64)] = &[
    ("consensus/silent/n32", 7.45),
    ("consensus/split-vote/n32", 13.40),
    ("consensus/silent/n64", 147.18),
    ("consensus/split-vote/n64", 345.78),
    ("consensus/silent/n128", 5756.39),
    ("consensus/split-vote/n128", 11262.76),
    ("phase-king/silent/n128", 88.60),
    ("reliable-broadcast/announce-then-silent/n128", 4.48),
];

/// One named engine phase and its wall-clock share of a run, in milliseconds
/// (machine-dependent, like `wall_ms`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMs {
    /// Phase name as reported by the engine (`step`, `produce`, `adversary`,
    /// `deliver` for the synchronous engine; the event engine adds `schedule`
    /// and `dispatch`).
    pub phase: String,
    /// Wall-clock spent in this phase across the whole run.
    pub ms: f64,
}

/// Wall-clock split of one run across the engine's named round phases. The
/// schema is open-ended on purpose: the split mirrors whatever phase names the
/// engine recorded, so the event engine's `schedule` / `dispatch` slots appear
/// here instead of silently reporting as zero — see `docs/ENGINE.md` for how to
/// read the names.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseSplit {
    /// Per-phase wall clock, in the order the engine first entered each phase.
    pub phases: Vec<PhaseMs>,
}

impl PhaseSplit {
    fn from_timings(timings: PhaseTimings) -> Self {
        PhaseSplit {
            phases: timings
                .phases()
                .iter()
                .map(|&(phase, ns)| PhaseMs {
                    phase: phase.to_string(),
                    ms: ns as f64 / 1_000_000.0,
                })
                .collect(),
        }
    }

    /// Wall-clock of the named phase, `0.0` when the engine never entered it.
    pub fn ms(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0.0, |p| p.ms)
    }

    /// Total engine-phase time (excludes driver overhead around `run_round`).
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.ms).sum()
    }

    /// The delivery work's share of the engine-phase total (0.0 when nothing
    /// was measured): the sync engine's `deliver` phase plus the event engine's
    /// `dispatch` phase, which plays the same role there. The zero-copy
    /// headline: at large `n` this used to approach 1.0 and now stays well
    /// below the produce share. (For the dominant-phase *name*, use
    /// [`PhaseTimings::dominant`] on the live harness — this split only exists
    /// so the JSON carries the recorded numbers.)
    pub fn deliver_share(&self) -> f64 {
        let total = self.total_ms();
        if total > 0.0 {
            (self.ms("deliver") + self.ms("dispatch")) / total
        } else {
            0.0
        }
    }
}

/// One measured run of the scaling grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Protocol name.
    pub protocol: String,
    /// Adversary name.
    pub adversary: String,
    /// System size `n`.
    pub n: usize,
    /// Byzantine count `f`.
    pub f: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Correct-node point-to-point messages.
    pub messages: u64,
    /// Deliveries to correct nodes after deduplication.
    pub deliveries: u64,
    /// Whether the run completed before its round cap.
    pub ok: bool,
    /// Which engine executed the run: `"sync"` for the lock-step scheduler,
    /// `"event"` for the discrete-event scheduler under zero-jitter timing
    /// (same counts by construction; the wall-clock difference is the
    /// scheduler's overhead).
    pub engine: String,
    /// Whether the engine's parallel node-step path was enabled for this run.
    pub parallel: bool,
    /// Wall-clock time of the run in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Engine-phase wall-clock split (machine-dependent).
    pub phases: PhaseSplit,
    /// `phases.deliver_share()`, precomputed so the JSON carries the headline.
    pub deliver_share: f64,
}

impl ScalingRow {
    /// The row with its machine-dependent measurements zeroed — the deterministic
    /// residue the drift gates compare.
    pub fn counts_only(&self) -> ScalingRow {
        ScalingRow {
            wall_ms: 0.0,
            phases: PhaseSplit::default(),
            deliver_share: 0.0,
            ..self.clone()
        }
    }
}

impl ScalingRow {
    /// The `protocol/adversary/n[/engine][/parallel]` scenario key. The
    /// reference lookup deliberately ignores both suffixes: every mode is
    /// compared against the same (serial, synchronous) pre-rewrite timing.
    pub fn key(&self) -> String {
        let engine = if self.engine == "sync" {
            String::new()
        } else {
            format!("/{}", self.engine)
        };
        let suffix = if self.parallel { "/parallel" } else { "" };
        format!(
            "{}/{}/n{}{}{}",
            self.protocol, self.adversary, self.n, engine, suffix
        )
    }

    fn reference_key(&self) -> String {
        format!("{}/{}/n{}", self.protocol, self.adversary, self.n)
    }
}

/// A measured-vs-reference comparison for one scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// The `protocol/adversary/n` scenario key.
    pub scenario: String,
    /// Pre-rewrite wall-clock in milliseconds (from [`PRE_CHANGE_REFERENCE_MS`]).
    pub pre_change_ms: f64,
    /// Wall-clock of this run in milliseconds.
    pub measured_ms: f64,
    /// `pre_change_ms / measured_ms`.
    pub speedup: f64,
}

/// The serialised scaling file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingFile {
    /// Base seed of the grid.
    pub seed: u64,
    /// Whether this file holds the quick (CI) prefix or the full grid.
    pub quick: bool,
    /// One row per measured run.
    pub rows: Vec<ScalingRow>,
    /// Speedup against the recorded pre-rewrite engine, where a reference exists.
    pub speedups: Vec<SpeedupRow>,
}

/// How the grid drives the engine's node-step path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepMode {
    /// Serial rows, plus a forced-parallel re-run at `n ≥ 64` whose counts are
    /// asserted identical — the shape recorded in `BENCH_scaling.json`.
    Recorded,
    /// Every run opts in to parallel stepping with the given engine threshold —
    /// the shape the CI threshold-drift gate compares across thresholds.
    Forced {
        threshold: usize,
    },
    Serial,
}

fn timed_run<F: ProtocolFactory>(mut harness: Harness<F>) -> (RunReport, f64, PhaseSplit) {
    let started = Instant::now();
    let report = harness.run().expect("scaling run completes");
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    (
        report,
        wall_ms,
        PhaseSplit::from_timings(harness.phase_timings()),
    )
}

fn row(report: &RunReport, parallel: bool, wall_ms: f64, phases: PhaseSplit) -> ScalingRow {
    ScalingRow {
        protocol: report.protocol.clone(),
        adversary: report.adversary.clone(),
        n: report.scenario.n(),
        f: report.scenario.byzantine,
        rounds: report.rounds,
        messages: report.messages.correct,
        deliveries: report.messages.deliveries,
        ok: report.completed(),
        engine: match report.scenario.engine {
            None | Some(EngineKind::Sync) => "sync".to_string(),
            Some(EngineKind::Event(_)) => "event".to_string(),
        },
        parallel,
        wall_ms,
        deliver_share: phases.deliver_share(),
        phases,
    }
}

/// `engine = None` runs the recorded sync-engine grid (with the event overhead
/// re-runs at `n = 128` in [`StepMode::Recorded`]); `engine = Some(..)` forces
/// every run through that engine instead, for overhead sweeps.
fn grid_rows(quick: bool, mode: StepMode, engine: Option<EngineKind>) -> Vec<ScalingRow> {
    let sizes = if quick { QUICK_SIZES } else { FULL_SIZES };
    let mut rows = Vec::new();

    // Applies the step mode to a built harness; returns whether the run counts
    // as "parallel" in the row.
    macro_rules! drive {
        ($harness:expr, $force_parallel:expr) => {{
            let mut harness = $harness;
            let parallel = match mode {
                StepMode::Recorded => {
                    if $force_parallel {
                        harness = harness.parallel_stepping();
                    }
                    $force_parallel
                }
                StepMode::Forced { threshold } => {
                    harness = harness.parallel_stepping().parallel_threshold(threshold);
                    true
                }
                StepMode::Serial => false,
            };
            (timed_run(harness), parallel)
        }};
    }

    for &n in sizes {
        let f = (n - 1) / 3;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();

        // Id-only consensus: every phase is a sequence of all-to-all broadcasts,
        // which is the traffic pattern the zero-copy message plane targets.
        // Split-vote is the broadcast-heavy headline (the adversary keeps the
        // phases coming). In the recorded mode, at n ≥ 64 the same scenario is
        // re-run with the opt-in parallel node-step path, and at n = 128 once
        // more through the discrete-event scheduler under zero-jitter timing;
        // the counts must not move (equality is asserted), only the wall clock
        // may — the event rows record the scheduler's overhead.
        for kind in [AdversaryKind::Silent, AdversaryKind::SplitVote] {
            let build = |engine: Option<EngineKind>| {
                let mut scenario = Simulation::scenario()
                    .correct(correct)
                    .byzantine(f)
                    .seed(SEED + n as u64)
                    .max_rounds(5_000)
                    .adversary(kind);
                if let Some(engine) = engine {
                    scenario = scenario.engine(engine);
                }
                scenario.consensus(&inputs)
            };
            let ((report, wall_ms, phases), parallel) = drive!(build(engine.clone()), false);
            rows.push(row(&report, parallel, wall_ms, phases));
            if mode == StepMode::Recorded && n >= 64 {
                let ((parallel_report, parallel_ms, parallel_phases), _) =
                    drive!(build(engine.clone()), true);
                assert_eq!(
                    (parallel_report.rounds, &parallel_report.messages),
                    (report.rounds, &report.messages),
                    "parallel stepping must not change behaviour"
                );
                rows.push(row(&parallel_report, true, parallel_ms, parallel_phases));
            }
            if mode == StepMode::Recorded && engine.is_none() && n == 128 {
                let ((event_report, event_ms, event_phases), _) =
                    drive!(build(Some(EngineKind::event())), false);
                assert_eq!(
                    (event_report.rounds, &event_report.messages),
                    (report.rounds, &report.messages),
                    "the zero-jitter event engine must not change behaviour"
                );
                rows.push(row(&event_report, false, event_ms, event_phases));
            }
        }

        // Phase-king head-to-head on the same sizes (known `(n, f)`, silent
        // faults — the only behaviour its wire format admits).
        let ((report, wall_ms, phases), parallel) = drive!(
            {
                let mut scenario = Simulation::scenario()
                    .correct(correct)
                    .byzantine(f)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .max_rounds(5_000);
                if let Some(engine) = engine.clone() {
                    scenario = scenario.engine(engine);
                }
                scenario.build(PhaseKingFactory::new(inputs.clone()))
            },
            false
        );
        rows.push(row(&report, parallel, wall_ms, phases));
    }

    // Reliable broadcast at the largest sizes: a fixed round budget, so the cost
    // is pure per-round engine work (echo broadcasts every round).
    let broadcast_sizes: &[usize] = if quick { &[32] } else { &[64, 128, 256] };
    for &n in broadcast_sizes {
        let f = (n - 1) / 3;
        let ((report, wall_ms, phases), parallel) = drive!(
            {
                let mut scenario = Simulation::scenario()
                    .correct(n - f)
                    .byzantine(f)
                    .seed(SEED + n as u64)
                    .adversary(AdversaryKind::AnnounceThenSilent);
                if let Some(engine) = engine.clone() {
                    scenario = scenario.engine(engine);
                }
                scenario.broadcast(42).rounds(12)
            },
            false
        );
        rows.push(row(&report, parallel, wall_ms, phases));
    }

    rows
}

/// Runs the scaling grid (`--quick` restricts it to the small-`n` prefix) and
/// returns one measured row per scenario.
pub fn scaling_rows(quick: bool) -> Vec<ScalingRow> {
    grid_rows(quick, StepMode::Recorded, None)
}

/// Runs the whole scaling grid through the given engine (the
/// `experiments -- scaling --engine event` overhead sweep). Counts are
/// engine-independent by construction; the wall clock is the point.
pub fn scaling_rows_with_engine(quick: bool, engine: EngineKind) -> Vec<ScalingRow> {
    grid_rows(quick, StepMode::Recorded, Some(engine))
}

/// The CI threshold-drift gate (see `.github/workflows/ci.yml`): runs the quick
/// grid once serially and once per parallel threshold, every run forced through
/// the opt-in parallel path, and compares the deterministic residue of the rows
/// (rounds, message and delivery counts, completion). Any difference between two
/// thresholds — or between a threshold and the serial reference — is returned as
/// a human-readable drift line; an empty result means the step modes are
/// behaviourally indistinguishable, as the engine promises.
pub fn threshold_drift(quick: bool, thresholds: &[usize]) -> Vec<String> {
    let reference: Vec<ScalingRow> = grid_rows(quick, StepMode::Serial, None)
        .iter()
        .map(ScalingRow::counts_only)
        .collect();
    let mut drift = Vec::new();
    for &threshold in thresholds {
        let rows = grid_rows(quick, StepMode::Forced { threshold }, None);
        if rows.len() != reference.len() {
            drift.push(format!(
                "threshold {threshold}: {} rows vs {} serial rows",
                rows.len(),
                reference.len()
            ));
            continue;
        }
        for (serial, forced) in reference.iter().zip(&rows) {
            let forced = ScalingRow {
                parallel: serial.parallel,
                ..forced.counts_only()
            };
            if *serial != forced {
                drift.push(format!(
                    "{}/{} n={} threshold={}: counts drifted: serial (rounds {}, messages {}, \
                     deliveries {}, ok {}) vs parallel (rounds {}, messages {}, deliveries {}, \
                     ok {})",
                    serial.protocol,
                    serial.adversary,
                    serial.n,
                    threshold,
                    serial.rounds,
                    serial.messages,
                    serial.deliveries,
                    serial.ok,
                    forced.rounds,
                    forced.messages,
                    forced.deliveries,
                    forced.ok,
                ));
            }
        }
    }
    drift
}

/// Assembles the scaling file: measured rows plus speedups against the recorded
/// pre-rewrite reference.
pub fn scaling_file(quick: bool) -> ScalingFile {
    let rows = scaling_rows(quick);
    let speedups = rows
        .iter()
        // Event rows measure the discrete-event scheduler's overhead, not the
        // engine-rewrite speedup — only the sync rows are comparable to the
        // recorded pre-rewrite timings.
        .filter(|r| r.engine == "sync")
        .filter_map(|r| {
            let reference = r.reference_key();
            PRE_CHANGE_REFERENCE_MS
                .iter()
                .find(|(scenario, _)| *scenario == reference)
                .map(|&(_, pre_change_ms)| SpeedupRow {
                    scenario: r.key(),
                    pre_change_ms,
                    measured_ms: r.wall_ms,
                    speedup: pre_change_ms / r.wall_ms,
                })
        })
        .collect();
    ScalingFile {
        seed: SEED,
        quick,
        rows,
        speedups,
    }
}

/// Writes `BENCH_scaling.json` (or another path) and returns the rendered JSON.
pub fn write_scaling(path: &std::path::Path, quick: bool) -> std::io::Result<String> {
    let json = serde_json::to_string_pretty(&scaling_file(quick))
        .expect("scaling serialization is infallible");
    std::fs::write(path, &json)?;
    Ok(json)
}

/// Re-runs the deterministic baseline grid and compares the aggregate rows against
/// a recorded `BENCH_baseline.json`. Returns the human-readable drift lines, empty
/// when the engine still reproduces the recorded behaviour exactly.
///
/// This is the CI regression guard: wall-clock may move with the hardware, but
/// rounds, messages, deliveries and verdicts must not move with an engine rewrite.
pub fn baseline_drift(recorded: &BaselineFile) -> Vec<String> {
    baseline_drift_against(recorded, &baseline_file())
}

/// The comparison behind [`baseline_drift`], with the current grid supplied by the
/// caller (unit-testable without running the grid).
pub fn baseline_drift_against(recorded: &BaselineFile, current: &BaselineFile) -> Vec<String> {
    let mut drift = Vec::new();
    if recorded.seed != current.seed {
        drift.push(format!(
            "baseline seed changed: recorded {:#x}, current {:#x}",
            recorded.seed, current.seed
        ));
    }
    if recorded.summary.len() != current.summary.len() {
        drift.push(format!(
            "baseline grid size changed: recorded {} rows, current {}",
            recorded.summary.len(),
            current.summary.len()
        ));
    }
    for (recorded_row, current_row) in recorded.summary.iter().zip(&current.summary) {
        if recorded_row != current_row {
            drift.push(format!(
                "{}/{} n={}: recorded (rounds {}, messages {}, ok {}) vs current \
                 (rounds {}, messages {}, ok {})",
                recorded_row.protocol,
                recorded_row.adversary,
                recorded_row.n,
                recorded_row.rounds,
                recorded_row.messages,
                recorded_row.ok,
                current_row.rounds,
                current_row.messages,
                current_row.ok,
            ));
        }
    }
    // The summary has no delivery column; deliveries are guarded through the full
    // per-round metrics embedded in the recorded reports. A length mismatch is
    // itself drift — `zip` would otherwise skip the unmatched scenarios silently.
    if recorded.reports.len() != current.reports.len() {
        drift.push(format!(
            "baseline report count changed: recorded {} reports, current {}",
            recorded.reports.len(),
            current.reports.len()
        ));
    }
    for (recorded_report, current_report) in recorded.reports.iter().zip(&current.reports) {
        if recorded_report.messages.deliveries != current_report.messages.deliveries {
            drift.push(format!(
                "{}/{} n={}: deliveries changed: recorded {} vs current {}",
                recorded_report.protocol,
                recorded_report.adversary,
                recorded_report.scenario.n(),
                recorded_report.messages.deliveries,
                current_report.messages.deliveries,
            ));
        }
    }
    drift
}

/// Loads a recorded baseline file from disk.
pub fn load_baseline(path: &std::path::Path) -> std::io::Result<BaselineFile> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|error| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("cannot parse {}: {error:?}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_is_deterministic_up_to_wall_clock() {
        let strip = |rows: Vec<ScalingRow>| -> Vec<ScalingRow> {
            rows.iter().map(ScalingRow::counts_only).collect()
        };
        let a = strip(scaling_rows(true));
        let b = strip(scaling_rows(true));
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.ok), "every quick scenario completes");
    }

    #[test]
    fn threshold_drift_is_empty_across_step_modes() {
        // The CI gate's core promise: forcing the parallel path at any threshold
        // reproduces the serial counts exactly.
        let drift = threshold_drift(true, &[1, 64]);
        assert_eq!(drift, Vec::<String>::new());
    }

    #[test]
    fn phase_split_totals_and_shares_follow_the_named_slots() {
        let split = PhaseSplit {
            phases: vec![
                PhaseMs {
                    phase: "produce".into(),
                    ms: 6.0,
                },
                PhaseMs {
                    phase: "deliver".into(),
                    ms: 3.0,
                },
                PhaseMs {
                    phase: "dispatch".into(),
                    ms: 1.0,
                },
            ],
        };
        assert_eq!(split.ms("deliver"), 3.0);
        assert_eq!(split.ms("schedule"), 0.0, "unknown phases read as zero");
        assert_eq!(split.total_ms(), 10.0);
        // deliver + dispatch over the total: the share stays meaningful for
        // event-engine rows where delivery work lives in `dispatch`.
        assert_eq!(split.deliver_share(), 0.4);
        assert_eq!(PhaseSplit::default().deliver_share(), 0.0);
    }

    #[test]
    fn the_event_engine_reproduces_the_sync_grid_counts() {
        // The scaling grid run end-to-end through the discrete-event scheduler
        // under zero-jitter timing must be count-identical to the sync grid —
        // the engine-level equivalence (tests/event_equivalence.rs) surfacing
        // at the benchmark layer.
        let normalize = |rows: Vec<ScalingRow>| -> Vec<ScalingRow> {
            rows.iter()
                .map(|r| ScalingRow {
                    engine: "sync".into(),
                    ..r.counts_only()
                })
                .collect()
        };
        let sync = normalize(grid_rows(true, StepMode::Serial, None));
        let event = normalize(grid_rows(true, StepMode::Serial, Some(EngineKind::event())));
        assert_eq!(sync, event);
    }

    #[test]
    fn scaling_file_round_trips_through_serde() {
        let file = scaling_file(true);
        let json = serde_json::to_string(&file).unwrap();
        let back: ScalingFile = serde_json::from_str(&json).unwrap();
        // Wall-clock survives serialisation; equality is over the whole struct.
        assert_eq!(back, file);
    }

    // The end-to-end "current engine reproduces BENCH_baseline.json" assertion
    // lives in tests/engine_equivalence.rs (full RunReport equality, strictly
    // stronger than the drift summary); here only the comparison logic itself is
    // tested, on synthetic files, so the expensive grid is not run twice.
    #[test]
    fn baseline_drift_reports_every_mismatch_class() {
        let row = |rounds: u64| crate::baseline::BaselineSummaryRow {
            protocol: "consensus".into(),
            adversary: "silent".into(),
            n: 4,
            f: 1,
            rounds,
            messages: 100,
            bytes_estimate: 1_600,
            ok: true,
        };
        let recorded = BaselineFile {
            seed: 1,
            summary: vec![row(7), row(9)],
            reports: Vec::new(),
        };
        let identical = recorded.clone();
        assert!(baseline_drift_against(&recorded, &identical).is_empty());

        let mut drifted = recorded.clone();
        drifted.seed = 2;
        drifted.summary[1] = row(10);
        drifted.summary.push(row(3));
        let drift = baseline_drift_against(&recorded, &drifted);
        assert_eq!(drift.len(), 3, "seed, grid size and row drift:\n{drift:#?}");
        assert!(drift.iter().any(|line| line.contains("seed changed")));
        assert!(drift.iter().any(|line| line.contains("grid size changed")));
        assert!(drift.iter().any(|line| line.contains("rounds 10")));
    }
}
