//! Deterministic workload generators.
//!
//! Every experiment and benchmark draws its inputs from here, so that (a) two
//! experiments stressing the same claim use the same input distributions and (b) a
//! table can be regenerated exactly from its seed. All generators are pure functions
//! of their parameters and a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use uba_core::dynamic_approx::ChurnPlan;
use uba_core::Real;
use uba_simnet::rng::{derive_seed, seeded_rng};
use uba_simnet::{IdSpace, NodeId};

/// Binary consensus inputs: `n` opinions of which a `ones_fraction` share are 1, the
/// rest 0, in a seed-determined order.
pub fn binary_inputs(n: usize, ones_fraction: f64, seed: u64) -> Vec<u64> {
    assert!(
        (0.0..=1.0).contains(&ones_fraction),
        "fraction must be a probability"
    );
    let ones = (n as f64 * ones_fraction).round() as usize;
    let mut inputs: Vec<u64> = (0..n).map(|i| u64::from(i < ones)).collect();
    inputs.shuffle(&mut seeded_rng(derive_seed(seed, 0xB1)));
    inputs
}

/// Real-valued inputs drawn uniformly from `[lo, hi]`.
pub fn uniform_reals(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(hi >= lo, "range must be non-empty");
    let mut rng = seeded_rng(derive_seed(seed, 0xA1));
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Real-valued inputs clustered around `center` with a few far outliers — the
/// sensor-fusion shape: most readings agree, a handful are wildly off.
pub fn clustered_with_outliers(
    n: usize,
    center: f64,
    spread: f64,
    outliers: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(outliers <= n, "cannot have more outliers than values");
    let mut rng = seeded_rng(derive_seed(seed, 0xC1));
    let mut values: Vec<f64> = (0..n - outliers)
        .map(|_| center + rng.gen_range(-spread..=spread))
        .collect();
    for _ in 0..outliers {
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        values.push(center + sign * spread * rng.gen_range(50.0..100.0));
    }
    values.shuffle(&mut rng);
    values
}

/// A join/leave schedule for the dynamic approximate-agreement driver: every
/// `period` rounds one node joins with a value drawn from `[lo, hi]` and (when the
/// correct population allows it) one of the original nodes leaves, keeping the system
/// size roughly constant.
pub fn rolling_churn_plan(
    initial_ids: &[NodeId],
    rounds: u64,
    period: u64,
    lo: f64,
    hi: f64,
    seed: u64,
) -> ChurnPlan {
    assert!(period > 0, "churn period must be positive");
    let mut rng = seeded_rng(derive_seed(seed, 0xD1));
    let mut plan = ChurnPlan::none();
    let mut leavers: Vec<NodeId> = initial_ids.to_vec();
    leavers.shuffle(&mut rng);
    let mut next_fresh_id = initial_ids.iter().map(|id| id.raw()).max().unwrap_or(0) + 1_000;
    let mut joined = 0usize;
    for round in (period..=rounds).step_by(period as usize) {
        let value = Real::from_f64(rng.gen_range(lo..=hi));
        plan = plan.join(round, NodeId::new(next_fresh_id), value);
        next_fresh_id += 17;
        joined += 1;
        // Only let an original node leave once a replacement has already joined, so
        // the correct population never dips below its starting size.
        if joined > 1 {
            if let Some(leaver) = leavers.pop() {
                plan = plan.leave(round, leaver);
            }
        }
    }
    plan
}

/// Sparse identifiers plus per-node event payloads for the total-ordering workload:
/// every correct node witnesses one unique event per round.
pub fn event_payloads(ids: &[NodeId], rounds: u64) -> Vec<Vec<u64>> {
    ids.iter()
        .enumerate()
        .map(|(node_index, _)| {
            (0..rounds)
                .map(|round| (node_index as u64) << 32 | round)
                .collect()
        })
        .collect()
}

/// One synthetic client request in an open-loop stream workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamRequest {
    /// The round in which the request arrives at the system (1-based).
    pub arrival_round: u64,
    /// The key the request touches (Zipf-skewed; key 0 is the hottest).
    pub key: u64,
}

/// Open-loop client-request stream: arrivals are scheduled by `rate` (requests
/// per round, fractional rates supported) independently of how fast the system
/// decides — the open-loop discipline — and keys are drawn Zipf(`zipf_s`) from
/// `0..key_space`, the standard skewed-popularity shape (a few hot keys take
/// most of the traffic). Pure function of its parameters and the seed.
pub fn open_loop_requests(
    rounds: u64,
    rate: f64,
    zipf_s: f64,
    key_space: usize,
    seed: u64,
) -> Vec<StreamRequest> {
    assert!(rate >= 0.0, "arrival rate must be non-negative");
    assert!(key_space > 0, "key space must be non-empty");
    // Zipf inverse-CDF table: cumulative weights of 1 / rank^s.
    let mut cumulative = Vec::with_capacity(key_space);
    let mut total = 0.0;
    for rank in 1..=key_space {
        total += 1.0 / (rank as f64).powf(zipf_s);
        cumulative.push(total);
    }
    let mut rng = seeded_rng(derive_seed(seed, 0x5E));
    let mut requests = Vec::new();
    let mut scheduled = 0u64;
    for round in 1..=rounds {
        // Deterministic open-loop pacing: by the end of round r exactly
        // floor(r * rate) requests have arrived, so fractional rates spread
        // evenly instead of rounding per round.
        let due = (round as f64 * rate).floor() as u64;
        for _ in scheduled..due {
            let u = rng.gen_range(0.0..total);
            let key = cumulative.partition_point(|&c| c <= u) as u64;
            requests.push(StreamRequest {
                arrival_round: round,
                key,
            });
        }
        scheduled = due;
    }
    requests
}

/// Generates the standard `(correct, byzantine)` identifier split used across the
/// experiment suite.
pub fn split_ids(correct: usize, byzantine: usize, seed: u64) -> (Vec<NodeId>, Vec<NodeId>) {
    let ids = IdSpace::default().generate(correct + byzantine, seed);
    let (c, b) = ids.split_at(correct);
    (c.to_vec(), b.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_inputs_respect_the_fraction_and_seed() {
        let inputs = binary_inputs(10, 0.3, 5);
        assert_eq!(inputs.len(), 10);
        assert_eq!(inputs.iter().sum::<u64>(), 3);
        assert_eq!(inputs, binary_inputs(10, 0.3, 5), "same seed, same order");
        assert_ne!(
            binary_inputs(10, 0.3, 6),
            inputs,
            "different seed shuffles differently"
        );
        assert_eq!(binary_inputs(4, 0.0, 1).iter().sum::<u64>(), 0);
        assert_eq!(binary_inputs(4, 1.0, 1).iter().sum::<u64>(), 4);
    }

    #[test]
    fn uniform_reals_stay_in_range_and_are_deterministic() {
        let values = uniform_reals(50, -3.0, 7.0, 11);
        assert_eq!(values.len(), 50);
        assert!(values.iter().all(|&v| (-3.0..=7.0).contains(&v)));
        assert_eq!(values, uniform_reals(50, -3.0, 7.0, 11));
    }

    #[test]
    fn clustered_values_contain_the_requested_outliers() {
        let values = clustered_with_outliers(20, 100.0, 1.0, 3, 13);
        assert_eq!(values.len(), 20);
        let far = values.iter().filter(|&&v| (v - 100.0).abs() > 10.0).count();
        assert_eq!(far, 3, "exactly the outliers are far from the cluster");
    }

    #[test]
    #[should_panic(expected = "more outliers")]
    fn clustered_rejects_too_many_outliers() {
        let _ = clustered_with_outliers(2, 0.0, 1.0, 3, 1);
    }

    #[test]
    fn rolling_churn_plan_alternates_joins_and_leaves() {
        let ids = IdSpace::default().generate(6, 3);
        let plan = rolling_churn_plan(&ids, 20, 5, 0.0, 10.0, 7);
        assert_eq!(
            plan.joins().len(),
            4,
            "one join every 5 rounds for 20 rounds"
        );
        assert_eq!(plan.leaves().len(), 3, "leaves lag joins by one period");
        assert!(plan.joins().iter().all(|(round, _, _)| *round % 5 == 0));
        // Fresh identifiers never collide with the initial ones.
        assert!(plan.joins().iter().all(|(_, id, _)| !ids.contains(id)));
        // Deterministic in the seed.
        assert_eq!(plan, rolling_churn_plan(&ids, 20, 5, 0.0, 10.0, 7));
    }

    #[test]
    fn event_payloads_are_unique_across_nodes_and_rounds() {
        let ids = IdSpace::default().generate(4, 9);
        let events = event_payloads(&ids, 6);
        let mut all: Vec<u64> = events.iter().flatten().copied().collect();
        assert_eq!(all.len(), 24);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 24, "every (node, round) event is unique");
    }

    #[test]
    fn open_loop_requests_pace_and_skew_deterministically() {
        let requests = open_loop_requests(100, 7.5, 1.1, 64, 33);
        assert_eq!(requests.len(), 750, "open-loop: floor(rounds * rate)");
        assert_eq!(requests, open_loop_requests(100, 7.5, 1.1, 64, 33));
        assert!(requests
            .iter()
            .all(|r| (1..=100).contains(&r.arrival_round)));
        assert!(requests.iter().all(|r| r.key < 64));
        // Zipf skew: the hottest key beats the coldest decile combined.
        let hot = requests.iter().filter(|r| r.key == 0).count();
        let cold = requests.iter().filter(|r| r.key >= 58).count();
        assert!(hot > cold, "hot key {hot} vs cold tail {cold}");
        // Fractional pacing never bunches: at most ceil(rate) arrivals per round.
        for round in 1..=100u64 {
            let in_round = requests.iter().filter(|r| r.arrival_round == round).count();
            assert!(in_round <= 8, "round {round} got {in_round} arrivals");
        }
    }

    #[test]
    fn split_ids_produces_disjoint_groups() {
        let (correct, byzantine) = split_ids(7, 2, 21);
        assert_eq!(correct.len(), 7);
        assert_eq!(byzantine.len(), 2);
        assert!(correct.iter().all(|id| !byzantine.contains(id)));
    }
}
