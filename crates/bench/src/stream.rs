//! Pipelined multi-shot agreement streams: the throughput measurement substrate.
//!
//! A single-shot scenario measures one agreement; a serving deployment runs a
//! *stream* of them. This module feeds both streaming families from one
//! open-loop client-request generator ([`open_loop_requests`]: configurable
//! arrival rate, Zipf-skewed keys) and measures decisions/sec, msgs/sec, batch
//! sizes and end-to-end request latency:
//!
//! * **consensus-stream** — overlapping [`consensus_stream`] instances behind
//!   [`StreamDriver`](uba_core::sim::StreamDriver) mux nodes: instance *k*
//!   batches the requests that arrived in its window, starts once the window
//!   closes, and all nodes vote on the batch's content-addressed digest (the
//!   way replicas vote on a block hash). The checker's `stream/*` oracles
//!   verify per-instance agreement and cross-instance total order.
//! * **total-order-stream** — the paper's total-ordering protocol with
//!   *batched* events: each round's arrivals form one `Vec<u64>` event
//!   submitted by that round's proposer, so each (instance, proposer) pair
//!   broadcasts exactly one `Shared` arena payload no matter how many requests
//!   it carries. The chain-prefix oracle is the cross-instance consistency
//!   check; per-request latency is the distance from arrival to the round the
//!   batch entered the finalised chain.
//!
//! **Conservative extension:** a single-instance, batch-size-≤1 configuration
//! takes the *single-shot path* — the consensus runner builds a plain
//! [`ConsensusFactory`] (no mux, no tagging) and the total-order runner always
//! uses the plain [`TotalOrderFactory`] — so the degenerate stream run is
//! byte-identical to the existing single-shot `RunReport`
//! (`tests/stream_equivalence.rs` pins this).
//!
//! Determinism contract (same policy as `scaling`/`soak`): request counts,
//! message counts, decisions and latency percentiles *in rounds* are exact
//! functions of the seed and are gated by [`stream_drift`]; wall-clock rates
//! (`decisions_per_sec`, `msgs_per_sec`, `wall_ms`) are recorded, never gated.
//!
//! **Window sweep** ([`window_sweep_rows`]): the active-window cost model made
//! measurable. Waves of `W` simultaneous instances start every fixed period;
//! decided instances retire, so the per-round mux cost tracks the *active
//! window* `W`, not the total horizon. Each row records the deterministic
//! [`MuxWork`] counters summed across nodes; [`window_sweep_slope`] hard-gates
//! the retirement property — doubling the horizon at fixed `W` must not move
//! per-round cost by more than 10%.

use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use uba_checker::attach_verdicts;
use uba_core::sim::{
    consensus_stream, ConsensusFactory, Harness, RunReport, Simulation, TotalOrderFactory,
    TotalOrderPlan,
};
use uba_simnet::rng::derive_seed;
use uba_simnet::shared::payload_digest;
use uba_simnet::{EngineKind, Histogram, MuxWork};

use crate::table::Table;
use crate::workload::{open_loop_requests, StreamRequest};

/// Seed every recorded stream artifact derives from.
pub const STREAM_SEED: u64 = 0x57EA_4D00;

/// Rounds a consensus-stream scenario allows past the last instance start.
/// Fault-free unanimous consensus terminates in a handful of rounds; the tail
/// only caps runaway runs.
pub const CONSENSUS_TAIL: u64 = 60;

/// One streaming workload shape.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Correct node count (streams run fault-free; see `uba_simnet::stream`).
    pub nodes: usize,
    /// Number of pipelined consensus instances (consensus-stream only).
    pub instances: usize,
    /// Rounds between consecutive instance starts (the batching window).
    pub spacing: u64,
    /// Proposal horizon in rounds (total-order-stream only).
    pub rounds: u64,
    /// Open-loop arrival rate, requests per round.
    pub rate: f64,
    /// Zipf skew of the request keys.
    pub zipf_s: f64,
    /// Number of distinct keys.
    pub key_space: usize,
    /// Workload seed.
    pub seed: u64,
}

impl StreamConfig {
    /// CI smoke shape: small and fast, same code paths.
    pub fn smoke() -> Self {
        StreamConfig {
            nodes: 6,
            instances: 24,
            spacing: 2,
            rounds: 60,
            rate: 40.0,
            zipf_s: 1.1,
            key_space: 64,
            seed: STREAM_SEED,
        }
    }

    /// The recorded full artifact shape: a million-request open-loop stream
    /// per family.
    pub fn full() -> Self {
        StreamConfig {
            nodes: 16,
            instances: 500,
            spacing: 2,
            rounds: 500,
            rate: 1_000.0,
            zipf_s: 1.1,
            key_space: 4_096,
            seed: STREAM_SEED,
        }
    }
}

/// The content-addressed value a consensus-stream instance votes on: a stable
/// digest of the batch's keys (what a block hash is to a block).
pub fn batch_value(batch: &[u64]) -> u64 {
    payload_digest(&batch)
}

/// The finality tail a total-order stream needs after its proposal horizon:
/// the protocol finalises a round once `2 * age > 5 * |S| + 4`, plus slack for
/// the per-round consensus instances to settle.
pub fn total_order_tail(nodes: usize) -> u64 {
    (5 * nodes as u64 + 4) / 2 + 16
}

/// The batched total-order plan for a config, plus the generated requests.
/// Round `r`'s arrivals form one `Vec<u64>` event submitted by proposer
/// `(r - 1) % nodes` in round `r`; empty rounds submit nothing.
pub fn total_order_plan(config: &StreamConfig) -> (TotalOrderPlan<Vec<u64>>, Vec<StreamRequest>) {
    let requests = open_loop_requests(
        config.rounds,
        config.rate,
        config.zipf_s,
        config.key_space,
        derive_seed(config.seed, 0x70),
    );
    let mut plan = TotalOrderPlan::rounds(config.rounds + total_order_tail(config.nodes));
    for round in 1..=config.rounds {
        let batch: Vec<u64> = requests
            .iter()
            .filter(|r| r.arrival_round == round)
            .map(|r| r.key)
            .collect();
        if !batch.is_empty() {
            plan = plan.event(round, ((round - 1) as usize) % config.nodes, batch);
        }
    }
    (plan, requests)
}

/// Everything one stream run produces: the report (oracle verdicts attached)
/// plus the request-level accounting the artifact rows are computed from.
pub struct StreamOutcome {
    /// The run report, with verdicts attached.
    pub report: RunReport,
    /// Total requests the generator produced.
    pub requests: u64,
    /// Requests whose batch was decided / finalised.
    pub decided_requests: u64,
    /// Agreement decisions reached (instances decided / batches finalised).
    pub decisions: u64,
    /// Batch size per scheduled (instance, proposer) payload.
    pub batch_sizes: Vec<usize>,
    /// Per-request latency in rounds, arrival → decision/finalisation.
    pub latencies_rounds: Vec<f64>,
    /// Wall-clock milliseconds spent driving the run.
    pub wall_ms: f64,
}

/// Execution knobs orthogonal to the workload shape: which engine drives the
/// run, whether nodes step in parallel, and the two active-window switches —
/// mux-level instance retirement and engine-level retired-tag traffic GC.
/// Both switches are observationally silent (`tests/stream_equivalence.rs`
/// pins report byte-identity across every combination); they only change how
/// much memory and per-round work the run carries.
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// `None` is the sync engine.
    pub engine: Option<EngineKind>,
    /// Parallel node stepping.
    pub parallel: bool,
    /// Retire decided mux slots into compact records (default on).
    pub retirement: bool,
    /// Prune queued engine traffic addressed to globally-retired instances
    /// (default off, matching the engines' own default).
    pub traffic_gc: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            engine: None,
            parallel: false,
            retirement: true,
            traffic_gc: false,
        }
    }
}

impl StreamOptions {
    /// The legacy knob set: a named engine and a parallel-stepping switch.
    pub fn on_engine(engine: Option<EngineKind>, parallel: bool) -> Self {
        StreamOptions {
            engine,
            parallel,
            ..StreamOptions::default()
        }
    }
}

/// Runs a pipelined consensus stream. `engine = None` is the sync engine;
/// `parallel` turns on parallel node stepping.
pub fn run_consensus_stream(
    config: &StreamConfig,
    engine: Option<EngineKind>,
    parallel: bool,
) -> StreamOutcome {
    run_consensus_stream_with(config, &StreamOptions::on_engine(engine, parallel))
}

/// [`run_consensus_stream`] with the full [`StreamOptions`] knob set.
pub fn run_consensus_stream_with(config: &StreamConfig, options: &StreamOptions) -> StreamOutcome {
    let requests = open_loop_requests(
        config.instances as u64 * config.spacing,
        config.rate,
        config.zipf_s,
        config.key_space,
        derive_seed(config.seed, 0xC5),
    );
    // Instance k batches the arrivals of its window
    // ((k * spacing) .. (k + 1) * spacing] and starts once the window closes.
    let mut batches: Vec<Vec<u64>> = vec![Vec::new(); config.instances];
    for request in &requests {
        let window = ((request.arrival_round - 1) / config.spacing) as usize;
        batches[window.min(config.instances - 1)].push(request.key);
    }
    let degenerate = config.instances == 1 && requests.len() <= 1;
    let last_start = if degenerate {
        1
    } else {
        config.instances as u64 * config.spacing + 1
    };
    let scenario = |max_rounds: u64| {
        let mut builder = Simulation::scenario()
            .correct(config.nodes)
            .byzantine(0)
            .seed(config.seed)
            .max_rounds(max_rounds);
        if let Some(kind) = options.engine.clone() {
            builder = builder.engine(kind);
        }
        builder
    };
    let started = Instant::now();
    let mut report = if degenerate {
        // The single-shot path, untouched: this is the conservative-extension
        // guarantee the stream_equivalence pin holds us to.
        let factory = ConsensusFactory::new(vec![batch_value(&batches[0]); config.nodes]);
        let mut harness = scenario(last_start + CONSENSUS_TAIL).build(factory);
        if options.parallel {
            harness = harness.parallel_stepping();
        }
        if options.traffic_gc {
            harness = harness.traffic_gc();
        }
        harness.run().expect("consensus stream run")
    } else {
        // Each instance starts the round after its batching window closes.
        let driver = consensus_stream(
            config.nodes,
            batches.iter().enumerate().map(|(k, batch)| {
                (
                    (k as u64 + 1) * config.spacing + 1,
                    batch.len(),
                    batch_value(batch),
                )
            }),
        )
        .retirement(options.retirement);
        let mut harness = scenario(last_start + CONSENSUS_TAIL).build(driver);
        if options.parallel {
            harness = harness.parallel_stepping();
        }
        if options.traffic_gc {
            harness = harness.traffic_gc();
        }
        harness.run().expect("consensus stream run")
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    attach_verdicts(&mut report);

    // Request accounting: an instance's commit round is the round its slowest
    // node decided; every request in its batch is served at that round.
    let mut decided_requests = 0u64;
    let mut decisions = 0u64;
    let mut latencies = Vec::new();
    if let Some(stream) = &report.stream {
        for instance in &stream.instances {
            if !instance.decided {
                continue;
            }
            let commit = instance
                .decide_rounds
                .iter()
                .filter_map(|(_, round)| *round)
                .max()
                .unwrap_or(instance.start_round);
            decisions += 1;
            let batch = &batches[instance.instance as usize];
            decided_requests += batch.len() as u64;
            for request in &requests {
                let window = (request.arrival_round - 1) / config.spacing;
                if window == instance.instance {
                    latencies.push((commit - request.arrival_round) as f64);
                }
            }
        }
    } else if let Some(consensus) = &report.consensus {
        // Degenerate single-shot path: one instance, decided iff all nodes did.
        if !consensus.decisions.is_empty() && consensus.decisions.len() == config.nodes {
            decisions = 1;
            decided_requests = requests.len() as u64;
            let commit = consensus
                .decisions
                .iter()
                .map(|decision| decision.round)
                .max()
                .unwrap_or(1);
            for request in &requests {
                latencies.push(commit.saturating_sub(request.arrival_round) as f64);
            }
        }
    }
    StreamOutcome {
        report,
        requests: requests.len() as u64,
        decided_requests,
        decisions,
        batch_sizes: batches.iter().map(Vec::len).collect(),
        latencies_rounds: latencies,
        wall_ms,
    }
}

/// Runs a batched total-order stream, sampling the finalised chain every round
/// so each batch's finalisation round (and hence per-request latency) is known.
pub fn run_total_order_stream(
    config: &StreamConfig,
    engine: Option<EngineKind>,
    parallel: bool,
) -> StreamOutcome {
    run_total_order_stream_with(config, &StreamOptions::on_engine(engine, parallel))
}

/// [`run_total_order_stream`] with the full [`StreamOptions`] knob set.
/// Retirement is a mux knob and does not apply here; the total-order node has
/// its own finality-driven retirement (`advance_finality` drops finalised
/// instances), and `traffic_gc` prunes engine traffic below its finalised
/// frontier.
pub fn run_total_order_stream_with(
    config: &StreamConfig,
    options: &StreamOptions,
) -> StreamOutcome {
    let (plan, requests) = total_order_plan(config);
    let total_rounds = config.rounds + total_order_tail(config.nodes);
    let mut builder = Simulation::scenario()
        .correct(config.nodes)
        .byzantine(0)
        .seed(config.seed)
        .max_rounds(total_rounds + 1);
    if let Some(kind) = options.engine.clone() {
        builder = builder.engine(kind);
    }
    let mut harness: Harness<TotalOrderFactory<Vec<u64>>> =
        builder.build(TotalOrderFactory::new(plan));
    if options.parallel {
        harness = harness.parallel_stepping();
    }
    if options.traffic_gc {
        harness = harness.traffic_gc();
    }
    let started = Instant::now();
    // Manual stepping (the same loop `Harness::run` uses) so the round each
    // chain position became final is observable; chains agree across nodes
    // (the chain-prefix oracle checks this), so node 0's view suffices.
    let mut finalized_round: Vec<u64> = Vec::new();
    while !harness.stopped() && harness.rounds_executed() < total_rounds + 1 {
        harness.step_round().expect("total-order stream round");
        let chain_len = harness.nodes()[0].chain().len();
        while finalized_round.len() < chain_len {
            finalized_round.push(harness.rounds_executed());
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let mut report = harness.report_now();
    attach_verdicts(&mut report);

    let mut decided_requests = 0u64;
    let mut latencies = Vec::new();
    let mut batch_sizes = Vec::new();
    let chain = harness.nodes()[0].chain();
    for (position, ordered) in chain.iter().enumerate() {
        let batch = &ordered.event;
        batch_sizes.push(batch.len());
        decided_requests += batch.len() as u64;
        // The batch holds exactly the arrivals of `ordered.round`.
        for _ in batch {
            latencies.push((finalized_round[position] - ordered.round) as f64);
        }
    }
    StreamOutcome {
        report,
        requests: requests.len() as u64,
        decided_requests,
        decisions: chain.len() as u64,
        batch_sizes,
        latencies_rounds: latencies,
        wall_ms,
    }
}

/// Nearest-rank percentile with linear interpolation (0.0 for an empty sample).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let fraction = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * fraction
}

fn batch_histogram(sizes: &[usize]) -> Vec<(f64, f64, u64)> {
    if sizes.is_empty() {
        return Vec::new();
    }
    let max = *sizes.iter().max().expect("non-empty") as f64;
    let bins = (max as usize + 1).clamp(1, 8);
    let mut histogram = Histogram::new(0.0, max + 1.0, bins);
    for &size in sizes {
        histogram.record(size as f64);
    }
    histogram.edges()
}

/// One recorded stream measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamRow {
    /// `"smoke"` or `"full"`.
    pub preset: String,
    /// `"consensus-stream"` or `"total-order-stream"`.
    pub family: String,
    /// `"sync"` or `"event"`.
    pub engine: String,
    /// Correct node count.
    pub nodes: usize,
    /// Scheduled agreement instances (consensus) or proposal rounds (total order).
    pub instances: u64,
    /// Rounds the run executed.
    pub rounds: u64,
    /// Requests the open-loop generator produced.
    pub requests: u64,
    /// Requests whose batch was decided / finalised.
    pub decided_requests: u64,
    /// Agreement decisions reached.
    pub decisions: u64,
    /// Correct-node messages sent.
    pub msgs: u64,
    /// Message deliveries.
    pub deliveries: u64,
    /// Batch-size histogram `(lo, hi, count)` over scheduled payloads.
    pub batch_hist: Vec<(f64, f64, u64)>,
    /// Median request latency, in rounds.
    pub lat_p50_rounds: f64,
    /// 95th-percentile request latency, in rounds.
    pub lat_p95_rounds: f64,
    /// 99th-percentile request latency, in rounds.
    pub lat_p99_rounds: f64,
    /// Decisions per wall-clock second (recorded, never gated).
    pub decisions_per_sec: f64,
    /// Correct messages per wall-clock second (recorded, never gated).
    pub msgs_per_sec: f64,
    /// Wall-clock milliseconds (recorded, never gated).
    pub wall_ms: f64,
    /// Whether every attached oracle verdict passed.
    pub oracles_passed: bool,
}

/// One point of the active-window cost sweep: waves of `window` simultaneous
/// consensus instances, `waves` waves in total, with decided slots retiring
/// and engine traffic GC on. Everything but `wall_ms` is an exact function of
/// the seed (the [`MuxWork`] counters are pure message-count arithmetic).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSweepRow {
    /// Active-window size: instances started simultaneously per wave.
    pub window: usize,
    /// Number of waves (the horizon; doubling it must not move per-round cost).
    pub waves: u64,
    /// Total instances scheduled (`window * waves`).
    pub instances: u64,
    /// Rounds the run executed.
    pub rounds: u64,
    /// Live-slot steps summed across nodes (the per-round work the mux does).
    pub slot_steps: u64,
    /// Inbox envelopes demuxed into the tag index, summed across nodes.
    pub envelopes_indexed: u64,
    /// Envelopes consumed at zero clones for retired/unscheduled tags.
    pub dropped_retired: u64,
    /// `slot_steps / rounds`: the per-round cost the sweep plots against
    /// `window`. Flat in `waves` iff retirement keeps the window bounded.
    pub steps_per_round: f64,
    /// Wall-clock milliseconds (recorded, never gated).
    pub wall_ms: f64,
}

/// Rounds between consecutive waves in the window sweep: comfortably above
/// the fault-free decide latency, so one wave retires before the next starts
/// and the active window is exactly `window`.
pub const SWEEP_WAVE_PERIOD: u64 = 8;

/// Horizon doubling at fixed window may move per-round cost by at most this
/// factor (the tail after the last wave dilutes the average slightly, so the
/// honest ratio sits just *below* 1.0; anything above 1.1 means decided
/// instances are still being paid for).
pub const SWEEP_SLOPE_MARGIN: f64 = 1.1;

/// Runs the active-window sweep: `window ∈ {1, 2, 4, 8}` × `waves ∈ {8, 16}`,
/// on the sync engine with retirement and engine traffic GC enabled.
pub fn window_sweep_rows() -> Vec<WindowSweepRow> {
    let nodes = 6;
    let mut rows = Vec::new();
    for &window in &[1usize, 2, 4, 8] {
        for &waves in &[8u64, 16] {
            let schedule: Vec<(u64, usize, u64)> = (0..waves)
                .flat_map(|wave| {
                    (0..window).map(move |slot| {
                        let tag = wave * window as u64 + slot as u64;
                        (
                            wave * SWEEP_WAVE_PERIOD + 1,
                            1usize,
                            payload_digest(&(STREAM_SEED ^ tag)),
                        )
                    })
                })
                .collect();
            let instances = schedule.len() as u64;
            let last_start = (waves - 1) * SWEEP_WAVE_PERIOD + 1;
            let driver = consensus_stream(nodes, schedule);
            let mut harness = Simulation::scenario()
                .correct(nodes)
                .byzantine(0)
                .seed(STREAM_SEED)
                .max_rounds(last_start + CONSENSUS_TAIL)
                .build(driver)
                .traffic_gc();
            let started = Instant::now();
            let report = harness.run().expect("window sweep run");
            let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let mut work = MuxWork::default();
            for node in harness.nodes() {
                let w = node.work();
                work.envelopes_indexed += w.envelopes_indexed;
                work.slot_steps += w.slot_steps;
                work.dropped_retired += w.dropped_retired;
            }
            rows.push(WindowSweepRow {
                window,
                waves,
                instances,
                rounds: report.rounds,
                slot_steps: work.slot_steps,
                envelopes_indexed: work.envelopes_indexed,
                dropped_retired: work.dropped_retired,
                steps_per_round: work.slot_steps as f64 / report.rounds.max(1) as f64,
                wall_ms,
            });
        }
    }
    rows
}

/// The sweep's hard gate: for every window size present at two horizons, the
/// per-round cost at the longer horizon must stay within
/// [`SWEEP_SLOPE_MARGIN`] of the shorter one. Returns violation lines; empty
/// means the active-window property holds.
pub fn window_sweep_slope(rows: &[WindowSweepRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut windows: Vec<usize> = rows.iter().map(|r| r.window).collect();
    windows.sort_unstable();
    windows.dedup();
    for window in windows {
        let mut at_window: Vec<&WindowSweepRow> =
            rows.iter().filter(|r| r.window == window).collect();
        at_window.sort_by_key(|r| r.waves);
        for pair in at_window.windows(2) {
            let (short, long) = (pair[0], pair[1]);
            if short.steps_per_round <= 0.0 {
                violations.push(format!(
                    "window {window}: zero per-round cost at {} waves (no work measured)",
                    short.waves
                ));
                continue;
            }
            let ratio = long.steps_per_round / short.steps_per_round;
            if ratio > SWEEP_SLOPE_MARGIN {
                violations.push(format!(
                    "window {window}: per-round cost grew {ratio:.3}× going from {} to {} \
                     waves ({:.3} → {:.3} slot steps/round; bound {SWEEP_SLOPE_MARGIN})",
                    short.waves, long.waves, short.steps_per_round, long.steps_per_round
                ));
            }
        }
    }
    violations
}

/// The `BENCH_stream.json` artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamFile {
    /// Seed the workloads derive from.
    pub seed: u64,
    /// One row per (preset, family, engine).
    pub rows: Vec<StreamRow>,
    /// The active-window cost sweep (empty in pre-sweep artifacts).
    #[serde(default)]
    pub window_sweep: Vec<WindowSweepRow>,
}

fn outcome_row(
    outcome: &StreamOutcome,
    preset: &str,
    family: &str,
    engine: &str,
    config: &StreamConfig,
    instances: u64,
) -> StreamRow {
    let wall_secs = (outcome.wall_ms / 1_000.0).max(1e-9);
    StreamRow {
        preset: preset.to_string(),
        family: family.to_string(),
        engine: engine.to_string(),
        nodes: config.nodes,
        instances,
        rounds: outcome.report.rounds,
        requests: outcome.requests,
        decided_requests: outcome.decided_requests,
        decisions: outcome.decisions,
        msgs: outcome.report.messages.correct,
        deliveries: outcome.report.messages.deliveries,
        batch_hist: batch_histogram(&outcome.batch_sizes),
        lat_p50_rounds: percentile(&outcome.latencies_rounds, 50.0),
        lat_p95_rounds: percentile(&outcome.latencies_rounds, 95.0),
        lat_p99_rounds: percentile(&outcome.latencies_rounds, 99.0),
        decisions_per_sec: outcome.decisions as f64 / wall_secs,
        msgs_per_sec: outcome.report.messages.correct as f64 / wall_secs,
        wall_ms: outcome.wall_ms,
        oracles_passed: outcome.report.verdicts_passed(),
    }
}

/// Runs one preset across both families and both engines (four rows).
pub fn stream_rows(preset: &str, config: &StreamConfig) -> Vec<StreamRow> {
    let engines: [(Option<EngineKind>, &str); 2] =
        [(None, "sync"), (Some(EngineKind::event()), "event")];
    let mut rows = Vec::new();
    for (engine, engine_name) in engines {
        let outcome = run_consensus_stream(config, engine.clone(), false);
        rows.push(outcome_row(
            &outcome,
            preset,
            "consensus-stream",
            engine_name,
            config,
            config.instances as u64,
        ));
        let outcome = run_total_order_stream(config, engine, false);
        rows.push(outcome_row(
            &outcome,
            preset,
            "total-order-stream",
            engine_name,
            config,
            config.rounds,
        ));
    }
    rows
}

/// Builds the artifact: smoke rows always, full rows unless `smoke_only`, and
/// the (cheap, deterministic) active-window sweep in both shapes.
pub fn stream_file(smoke_only: bool) -> StreamFile {
    let mut rows = stream_rows("smoke", &StreamConfig::smoke());
    if !smoke_only {
        rows.extend(stream_rows("full", &StreamConfig::full()));
    }
    StreamFile {
        seed: STREAM_SEED,
        rows,
        window_sweep: window_sweep_rows(),
    }
}

/// Compares the deterministic columns of two stream files, row-matched by
/// (preset, family, engine, nodes). Returns human-readable drift lines; empty
/// means no drift. Wall-clock columns are never compared.
pub fn stream_drift(current: &StreamFile, committed: &StreamFile) -> Vec<String> {
    let mut drift = Vec::new();
    for row in &current.rows {
        let Some(recorded) = committed.rows.iter().find(|r| {
            r.preset == row.preset
                && r.family == row.family
                && r.engine == row.engine
                && r.nodes == row.nodes
        }) else {
            drift.push(format!(
                "no committed {} {} row on the {} engine at n = {} to compare against",
                row.preset, row.family, row.engine, row.nodes
            ));
            continue;
        };
        let mut field = |name: &str, fresh: String, committed: String| {
            if fresh != committed {
                drift.push(format!(
                    "{} {} ({} engine, n = {}): {} drifted from {} to {}",
                    row.preset, row.family, row.engine, row.nodes, name, committed, fresh
                ));
            }
        };
        field(
            "rounds",
            row.rounds.to_string(),
            recorded.rounds.to_string(),
        );
        field(
            "requests",
            row.requests.to_string(),
            recorded.requests.to_string(),
        );
        field(
            "decided_requests",
            row.decided_requests.to_string(),
            recorded.decided_requests.to_string(),
        );
        field(
            "decisions",
            row.decisions.to_string(),
            recorded.decisions.to_string(),
        );
        field("msgs", row.msgs.to_string(), recorded.msgs.to_string());
        field(
            "deliveries",
            row.deliveries.to_string(),
            recorded.deliveries.to_string(),
        );
        field(
            "lat_p50_rounds",
            format!("{:.3}", row.lat_p50_rounds),
            format!("{:.3}", recorded.lat_p50_rounds),
        );
        field(
            "lat_p95_rounds",
            format!("{:.3}", row.lat_p95_rounds),
            format!("{:.3}", recorded.lat_p95_rounds),
        );
        field(
            "lat_p99_rounds",
            format!("{:.3}", row.lat_p99_rounds),
            format!("{:.3}", recorded.lat_p99_rounds),
        );
        field(
            "batch_hist",
            format!("{:?}", row.batch_hist),
            format!("{:?}", recorded.batch_hist),
        );
        field(
            "oracles_passed",
            row.oracles_passed.to_string(),
            recorded.oracles_passed.to_string(),
        );
    }
    // The sweep's counters are pure count arithmetic, so they gate like the
    // row counts. A committed artifact with no sweep section predates the
    // sweep — nothing to compare against, not a drift.
    if !committed.window_sweep.is_empty() {
        for row in &current.window_sweep {
            let Some(recorded) = committed
                .window_sweep
                .iter()
                .find(|r| r.window == row.window && r.waves == row.waves)
            else {
                drift.push(format!(
                    "no committed window-sweep row at window = {}, waves = {}",
                    row.window, row.waves
                ));
                continue;
            };
            let mut field = |name: &str, fresh: String, committed: String| {
                if fresh != committed {
                    drift.push(format!(
                        "window sweep (window = {}, waves = {}): {} drifted from {} to {}",
                        row.window, row.waves, name, committed, fresh
                    ));
                }
            };
            field(
                "instances",
                row.instances.to_string(),
                recorded.instances.to_string(),
            );
            field(
                "rounds",
                row.rounds.to_string(),
                recorded.rounds.to_string(),
            );
            field(
                "slot_steps",
                row.slot_steps.to_string(),
                recorded.slot_steps.to_string(),
            );
            field(
                "envelopes_indexed",
                row.envelopes_indexed.to_string(),
                recorded.envelopes_indexed.to_string(),
            );
            field(
                "dropped_retired",
                row.dropped_retired.to_string(),
                recorded.dropped_retired.to_string(),
            );
            field(
                "steps_per_round",
                format!("{:.3}", row.steps_per_round),
                format!("{:.3}", recorded.steps_per_round),
            );
        }
    }
    drift
}

/// Renders the active-window sweep as a terminal table.
pub fn window_sweep_table(rows: &[WindowSweepRow]) -> Table {
    let mut table = Table::new(
        "window sweep: per-round mux cost vs active-window size".to_string(),
        &[
            "window",
            "waves",
            "instances",
            "rounds",
            "slot steps",
            "indexed",
            "dropped",
            "steps/round",
            "wall ms",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.window.to_string(),
            row.waves.to_string(),
            row.instances.to_string(),
            row.rounds.to_string(),
            row.slot_steps.to_string(),
            row.envelopes_indexed.to_string(),
            row.dropped_retired.to_string(),
            format!("{:.3}", row.steps_per_round),
            format!("{:.1}", row.wall_ms),
        ]);
    }
    table
}

/// Renders the artifact as a terminal table.
pub fn stream_table(file: &StreamFile) -> Table {
    let mut table = Table::new(
        format!(
            "stream: pipelined multi-shot agreement throughput (seed {:#x})",
            file.seed
        ),
        &[
            "preset",
            "family",
            "engine",
            "n",
            "requests",
            "decided",
            "decisions",
            "msgs",
            "lat p50",
            "lat p99",
            "dec/s",
            "msg/s",
            "verdict",
        ],
    );
    for row in &file.rows {
        table.push_row(vec![
            row.preset.clone(),
            row.family.clone(),
            row.engine.clone(),
            row.nodes.to_string(),
            row.requests.to_string(),
            row.decided_requests.to_string(),
            row.decisions.to_string(),
            row.msgs.to_string(),
            format!("{:.1}", row.lat_p50_rounds),
            format!("{:.1}", row.lat_p99_rounds),
            format!("{:.1}", row.decisions_per_sec),
            format!("{:.1}", row.msgs_per_sec),
            if row.oracles_passed {
                "ok".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    table
}

/// Reads a committed stream artifact, if present and well-formed.
pub fn read_stream(path: &Path) -> Option<StreamFile> {
    let json = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&json).ok()
}

/// Writes the artifact to `path` and returns the JSON.
pub fn write_stream(path: &Path, file: &StreamFile) -> std::io::Result<String> {
    let json = serde_json::to_string_pretty(file).expect("stream files serialise");
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StreamConfig {
        StreamConfig {
            nodes: 4,
            instances: 6,
            spacing: 2,
            rounds: 16,
            rate: 3.0,
            zipf_s: 1.1,
            key_space: 16,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn the_consensus_stream_decides_every_instance_and_passes_its_oracles() {
        let outcome = run_consensus_stream(&tiny(), None, false);
        assert_eq!(outcome.decisions, 6, "every pipelined instance decides");
        assert_eq!(outcome.requests, 36);
        assert_eq!(outcome.decided_requests, 36);
        assert_eq!(outcome.latencies_rounds.len(), 36);
        assert!(outcome.report.verdicts_passed());
        let stream = outcome.report.stream.as_ref().expect("stream section");
        assert!(stream.agreement);
        assert_eq!(stream.completed, 6);
        assert!(outcome
            .report
            .verdicts
            .iter()
            .any(|verdict| verdict.oracle == "stream"));
        // Latency is positive: a batch cannot decide before it arrives.
        assert!(outcome.latencies_rounds.iter().all(|&l| l >= 1.0));
    }

    #[test]
    fn the_total_order_stream_finalises_every_batch() {
        let outcome = run_total_order_stream(&tiny(), None, false);
        assert_eq!(outcome.requests, 48);
        assert_eq!(
            outcome.decided_requests, 48,
            "the finality tail covers the whole horizon"
        );
        assert_eq!(outcome.decisions, 16, "one batch per non-empty round");
        assert!(outcome.report.verdicts_passed());
        assert!(outcome.latencies_rounds.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn stream_runs_are_deterministic_in_the_seed() {
        let a = run_consensus_stream(&tiny(), None, false);
        let b = run_consensus_stream(&tiny(), None, false);
        assert_eq!(a.report, b.report);
        assert_eq!(a.latencies_rounds, b.latencies_rounds);
    }

    #[test]
    fn the_drift_gate_flags_deterministic_changes_and_missing_rows() {
        let outcome = run_consensus_stream(&tiny(), None, false);
        let row = outcome_row(&outcome, "smoke", "consensus-stream", "sync", &tiny(), 6);
        let file = StreamFile {
            seed: 1,
            rows: vec![row.clone()],
            window_sweep: Vec::new(),
        };
        assert!(stream_drift(&file, &file).is_empty());

        let mut drifted = file.clone();
        drifted.rows[0].msgs += 1;
        drifted.rows[0].wall_ms *= 100.0; // wall clock must not trip the gate
        let lines = stream_drift(&drifted, &file);
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("msgs"));

        let mut renamed = file.clone();
        renamed.rows[0].engine = "event".to_string();
        let lines = stream_drift(&renamed, &file);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("no committed"));
    }

    #[test]
    fn retirement_and_traffic_gc_leave_the_report_byte_identical() {
        let base = run_consensus_stream(&tiny(), None, false);
        let keeping = run_consensus_stream_with(
            &tiny(),
            &StreamOptions {
                retirement: false,
                ..StreamOptions::default()
            },
        );
        let gc = run_consensus_stream_with(
            &tiny(),
            &StreamOptions {
                traffic_gc: true,
                ..StreamOptions::default()
            },
        );
        assert_eq!(base.report, keeping.report, "retirement is silent");
        assert_eq!(base.report, gc.report, "traffic GC is silent");
        assert_eq!(base.latencies_rounds, keeping.latencies_rounds);
        assert_eq!(base.latencies_rounds, gc.latencies_rounds);
    }

    #[test]
    fn the_window_sweep_is_deterministic_and_flat_in_the_horizon() {
        let rows = window_sweep_rows();
        assert_eq!(rows.len(), 8, "4 windows × 2 horizons");
        let again = window_sweep_rows();
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.slot_steps, b.slot_steps);
            assert_eq!(a.envelopes_indexed, b.envelopes_indexed);
            assert_eq!(a.dropped_retired, b.dropped_retired);
            assert_eq!(a.rounds, b.rounds);
        }
        let violations = window_sweep_slope(&rows);
        assert!(violations.is_empty(), "{violations:?}");
        // Doubling the window roughly doubles per-round cost (the sweep's
        // point): the widest window costs strictly more per round than the
        // narrowest at the same horizon.
        let narrow = rows
            .iter()
            .find(|r| r.window == 1 && r.waves == 8)
            .expect("window 1 row");
        let wide = rows
            .iter()
            .find(|r| r.window == 8 && r.waves == 8)
            .expect("window 8 row");
        assert!(wide.steps_per_round > 4.0 * narrow.steps_per_round);
    }

    #[test]
    fn the_slope_gate_flags_cost_that_grows_with_the_horizon() {
        let flat = |waves: u64, steps: u64| WindowSweepRow {
            window: 2,
            waves,
            instances: 2 * waves,
            rounds: 10 * waves,
            slot_steps: steps,
            envelopes_indexed: steps,
            dropped_retired: 0,
            steps_per_round: steps as f64 / (10 * waves) as f64,
            wall_ms: 0.0,
        };
        assert!(window_sweep_slope(&[flat(8, 800), flat(16, 1_600)]).is_empty());
        let violations = window_sweep_slope(&[flat(8, 800), flat(16, 3_200)]);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("window 2"));
    }

    #[test]
    fn percentiles_interpolate() {
        let samples = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, 50.0), 2.5);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }
}
