//! Machine-readable performance baseline (`BENCH_baseline.json`).
//!
//! The experiment tables are for humans; the perf trajectory needs numbers a future
//! PR can diff mechanically. [`baseline_reports`] runs a fixed grid of scenarios —
//! every core protocol, the head-to-head baselines, several sizes and adversaries —
//! through the unified `Simulation` driver, attaches the `uba-checker` oracle
//! verdicts, and [`write_baseline`] serialises the full [`RunReport`]s plus an
//! aggregate summary to JSON. Regenerate with:
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- baseline
//! ```
//!
//! The grid is deterministic (fixed seeds), so two runs of the same code produce
//! byte-identical files and any diff is a behaviour or cost change.

use serde::{Deserialize, Serialize};

use uba_baselines::{KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_checker::attach_verdicts;
use uba_core::sim::{AdversaryKind, ParallelConsensusFactory, RunReport, ScenarioExt, Simulation};
use uba_simnet::IdSpace;

const SEED: u64 = 0xBA5E;

/// One aggregate line per report, for cheap diffing without parsing whole reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineSummaryRow {
    /// Protocol name.
    pub protocol: String,
    /// Adversary name.
    pub adversary: String,
    /// System size `n`.
    pub n: usize,
    /// Byzantine count `f`.
    pub f: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Correct-node messages.
    pub messages: u64,
    /// Estimated correct-node bytes.
    pub bytes_estimate: u64,
    /// Whether the run completed and every oracle verdict passed.
    pub ok: bool,
}

/// The serialised baseline file: full reports plus the aggregate summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Base seed of the grid.
    pub seed: u64,
    /// One aggregate row per report.
    pub summary: Vec<BaselineSummaryRow>,
    /// The full run reports, verdicts attached.
    pub reports: Vec<RunReport>,
}

fn summarise(report: &RunReport) -> BaselineSummaryRow {
    BaselineSummaryRow {
        protocol: report.protocol.clone(),
        adversary: report.adversary.clone(),
        n: report.scenario.n(),
        f: report.scenario.byzantine,
        rounds: report.rounds,
        messages: report.messages.correct,
        bytes_estimate: report.messages.correct_bytes_estimate,
        ok: report.completed() && report.verdicts_passed(),
    }
}

/// Runs the fixed baseline grid and returns the verdict-annotated reports.
pub fn baseline_reports() -> Vec<RunReport> {
    let mut reports = Vec::new();

    // Consensus across f and adversaries, at the resiliency boundary n = 3f + 1.
    for f in 1..=3usize {
        let correct = 2 * f + 1;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        for kind in [
            AdversaryKind::Silent,
            AdversaryKind::AnnounceThenSilent,
            AdversaryKind::SplitVote,
        ] {
            reports.push(
                Simulation::scenario()
                    .correct(correct)
                    .byzantine(f)
                    .seed(SEED + f as u64)
                    .adversary(kind)
                    .consensus(&inputs)
                    .run()
                    .expect("consensus baseline completes"),
            );
        }
        // Head-to-head: phase-king on the same workload.
        reports.push(
            Simulation::scenario()
                .correct(correct)
                .byzantine(f)
                .ids(IdSpace::Consecutive)
                .seed(0)
                .max_rounds(300)
                .build(PhaseKingFactory::new(inputs))
                .run()
                .expect("phase-king baseline completes"),
        );
    }

    // Reliable broadcast, correct and equivocating sources, plus Srikanth–Toueg.
    for &n in &[7usize, 13, 25] {
        let f = (n - 1) / 3;
        reports.push(
            Simulation::scenario()
                .correct(n - f)
                .byzantine(f)
                .seed(SEED + n as u64)
                .adversary(AdversaryKind::AnnounceThenSilent)
                .broadcast(42)
                .rounds(12)
                .run()
                .expect("broadcast baseline completes"),
        );
        reports.push(
            Simulation::scenario()
                .correct(n - f)
                .byzantine(f)
                .seed(SEED + n as u64)
                .broadcast_equivocating(1, 2)
                .rounds(12)
                .run()
                .expect("equivocating baseline completes"),
        );
        reports.push(
            Simulation::scenario()
                .correct(n - f)
                .byzantine(f)
                .ids(IdSpace::Consecutive)
                .seed(0)
                .build(StBroadcastFactory::new(42))
                .rounds(8)
                .run()
                .expect("srikanth-toueg baseline completes"),
        );
    }

    // Rotor (id-only and known-f) across sizes.
    for &n in &[8usize, 16, 32] {
        let f = (n - 1) / 3;
        reports.push(
            Simulation::scenario()
                .correct(n - f)
                .byzantine(f)
                .seed(SEED + n as u64)
                .adversary(AdversaryKind::AnnounceThenSilent)
                .rotor()
                .run()
                .expect("rotor baseline completes"),
        );
        reports.push(
            Simulation::scenario()
                .correct(n - f)
                .byzantine(f)
                .ids(IdSpace::Consecutive)
                .seed(0)
                .max_rounds(3 * n as u64 + 10)
                .build(KnownRotorFactory)
                .run()
                .expect("known-rotor baseline completes"),
        );
    }

    // Approximate agreement under extreme outliers, single-shot and iterated.
    let inputs: Vec<f64> = (0..11).map(|i| i as f64 * 10.0).collect();
    reports.push(
        Simulation::scenario()
            .correct(11)
            .byzantine(3)
            .seed(SEED)
            .adversary(AdversaryKind::Worst)
            .approx(&inputs)
            .run()
            .expect("approx baseline completes"),
    );
    reports.push(
        Simulation::scenario()
            .correct(11)
            .byzantine(3)
            .seed(SEED)
            .iterated_approx(&inputs, 6)
            .run()
            .expect("iterated approx baseline completes"),
    );

    // Parallel consensus with ghost-pair injection.
    let pairs: Vec<(u64, u64)> = (0..8).map(|i| (i, 100 + i)).collect();
    reports.push(
        Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(SEED + 8)
            .max_rounds(500)
            .adversary(AdversaryKind::Worst)
            .build(
                ParallelConsensusFactory::new(pairs)
                    .with_ghost_pairs(vec![(1_000_001, 13), (1_000_002, 17)]),
            )
            .run()
            .expect("parallel baseline completes"),
    );

    for report in &mut reports {
        attach_verdicts(report);
    }
    reports
}

/// Assembles the full baseline file structure.
pub fn baseline_file() -> BaselineFile {
    let reports = baseline_reports();
    BaselineFile {
        seed: SEED,
        summary: reports.iter().map(summarise).collect(),
        reports,
    }
}

/// Writes `BENCH_baseline.json` (or another path) and returns the rendered JSON.
pub fn write_baseline(path: &std::path::Path) -> std::io::Result<String> {
    let json = serde_json::to_string_pretty(&baseline_file())
        .expect("baseline serialization is infallible");
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_grid_passes_all_oracles_and_round_trips() {
        let file = baseline_file();
        assert_eq!(file.summary.len(), file.reports.len());
        assert!(
            file.reports.len() >= 20,
            "the grid covers every protocol family"
        );
        for row in &file.summary {
            assert!(
                row.ok,
                "{} under {} failed its oracles",
                row.protocol, row.adversary
            );
        }
        let json = serde_json::to_string(&file).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn baseline_grid_is_deterministic() {
        let a = baseline_file();
        let b = baseline_file();
        assert_eq!(a, b);
    }
}
