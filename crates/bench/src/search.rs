//! Margin-guided adversarial search: a feedback-driven fuzzer.
//!
//! Where [`crate::fuzz::fuzz_grid`] *enumerates* a fixed grid, [`search_grid`]
//! *searches*: a seeded hill-climb with restarts that mutates [`FuzzCase`]s —
//! population sizes, seeds, identifier layouts and attack-plan steps, including
//! the stateful [`AttackBehavior::Adaptive`] behaviours — using the checker
//! margins ([`uba_checker::margin`]) as the fitness signal. A run whose
//! smallest relevant margin shrinks moved *toward* the violation surface even
//! though every verdict still passes; the climb keeps the mutation and tries
//! again from there. A run with a violated property is a found counterexample:
//! it is minimised through the same property-id-preserving shrinker the grid
//! fuzzer uses ([`crate::fuzz::shrink_case_with`] over
//! [`crate::fuzz::replay_failures`]), so search reproducers replay and shrink
//! exactly like grid ones (`experiments -- fuzz --replay`).
//!
//! Determinism contract (pinned by `tests/rng_properties.rs`): the whole search
//! is a pure function of the seed grid and the [`SearchConfig`]. Every restart
//! derives its RNG stream from `derive_seed(base_seed, restart)`, restarts fan
//! out over the same striped [`run_trials`] pool as every other sweep, and the
//! per-restart climbs never communicate — so the trajectory and the final
//! counterexamples are byte-identical for any worker count.
//!
//! The mutation vocabulary is the shrinker's move set in reverse — grow the
//! populations the shrinker shrinks, add the plan steps the shrinker drops,
//! re-derive the seeds the shrinker keeps — plus the adaptive-step moves the
//! grid cannot express at all.

use serde::{Deserialize, Serialize};

use uba_simnet::attack::{
    ActorRange, AdaptiveStrategy, AttackBehavior, AttackStep, SemanticStrategy,
};
use uba_simnet::rng::derive_seed;
use uba_simnet::IdSpace;

use crate::fuzz::{
    replay_failures, run_case, shrink_case_with, Counterexample, FuzzCase, ProtocolId,
};
use crate::montecarlo::{run_trials, SweepConfig};
use uba_simnet::sweep::ScenarioGrid;

/// Tuning of one search run. All fields participate in the determinism
/// contract: same config + same grid ⇒ same outcome, any worker count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Independent hill-climb restarts (each seeded from a different grid case).
    pub restarts: u64,
    /// Mutation evaluations per restart (the per-climb budget).
    pub steps: u64,
    /// Root seed for restart RNG streams and seed-mutation moves.
    pub base_seed: u64,
    /// Worker threads for the restart fan-out (does not affect results).
    pub workers: usize,
    /// Maximum number of violating cases to shrink into reproducers.
    pub max_counterexamples: usize,
}

impl SearchConfig {
    /// The bounded-budget configuration CI's `search-smoke` job runs.
    pub fn smoke(workers: usize) -> Self {
        SearchConfig {
            restarts: 8,
            steps: 24,
            base_seed: 0x5EA2_C45E,
            workers,
            max_counterexamples: 3,
        }
    }

    /// The full-depth configuration behind `experiments -- fuzz --search`.
    pub fn full(workers: usize) -> Self {
        SearchConfig {
            restarts: 24,
            steps: 64,
            base_seed: 0x5EA2_C45E,
            workers,
            max_counterexamples: 5,
        }
    }
}

/// One evaluated mutation in a search trajectory — the serialisable record the
/// determinism pins compare byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStep {
    /// Which restart the step belongs to.
    pub restart: u64,
    /// Evaluation index within the restart (0 = the seed case itself).
    pub step: u64,
    /// One-line description of the evaluated case.
    pub case: String,
    /// Smallest relevant margin of the evaluated run (0 on a violation).
    pub min_margin: u64,
    /// Sum of the relevant margins (the hill-climb tie-breaker).
    pub margin_sum: u64,
    /// Whether the case violated an asserted property.
    pub violation: bool,
    /// Whether the climb accepted the mutation and moved to this case.
    pub accepted: bool,
}

/// The outcome of one search run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Total cases executed across every restart.
    pub evaluations: u64,
    /// Every evaluated step, in `(restart, step)` order.
    pub trajectory: Vec<SearchStep>,
    /// Shrunk reproducers for the violations found, in restart order (deduped
    /// by protocol and violated property set, capped by the config).
    pub counterexamples: Vec<Counterexample>,
}

impl SearchOutcome {
    /// Whether the search found at least one violation.
    pub fn found_violation(&self) -> bool {
        !self.counterexamples.is_empty()
    }
}

/// Splitmix-style step of the search's own RNG stream (kept local so search
/// determinism does not depend on any other consumer of the shim RNG).
fn next_rand(state: &mut u64) -> u64 {
    *state = derive_seed(*state, 0x9E37);
    *state
}

/// The fitness of an evaluated case, ordered lexicographically (lower is
/// better): violations first, then the smallest relevant margin, then the sum
/// of relevant margins as the gradient tie-breaker.
fn fitness(case: &FuzzCase, violation: bool, margins: &[u64]) -> (u64, u64, u64) {
    let _ = case;
    let min = margins.iter().copied().min().unwrap_or(u64::MAX);
    let sum = margins.iter().fold(0u64, |a, &m| a.saturating_add(m));
    (u64::from(!violation), min, sum)
}

/// The margins the judge actually asserts for this case: everything except the
/// contextual `resiliency` entry — narrowed to the recovery oracle for
/// admissible crash-bearing cases, whose other oracles are legitimately
/// unasserted (a mid-run crash may cost liveness without breaking any theorem).
fn relevant_margins(case: &FuzzCase, report: &uba_simnet::sim::RunReport) -> Vec<u64> {
    let crash_only = case.spec.admissible() && case.spec.churn.has_crash_events();
    report
        .margins
        .oracles
        .iter()
        .filter(|m| m.oracle != "resiliency")
        .filter(|m| !crash_only || m.oracle == "recovery")
        .map(|m| m.margin)
        .collect()
}

/// Applies the mutation selected by `roll` to the case, if applicable. The
/// moves are the shrinker's vocabulary reversed (grow populations, add plan
/// steps, re-derive seeds) plus the adaptive-step moves.
fn mutate(case: &FuzzCase, roll: u64, rng: &mut u64) -> Option<FuzzCase> {
    let mut next = case.clone();
    let spec = &mut next.spec;
    match roll % 10 {
        // Population moves: the reverse of the shrinker's halve/decrement.
        0 => spec.correct = (spec.correct + 1).min(13),
        1 => {
            let floor = case.protocol.min_correct().max(2);
            if spec.correct <= floor {
                return None;
            }
            spec.correct -= 1;
        }
        2 => spec.byzantine = (spec.byzantine + 1).min(6),
        3 => {
            if spec.byzantine <= 1 {
                return None;
            }
            spec.byzantine -= 1;
        }
        // Seed move: re-derive, never re-roll (keeps the climb reproducible).
        4 => spec.seed = derive_seed(spec.seed, next_rand(rng)),
        // Plan moves: add an adaptive step, re-aim an existing step, add a
        // boundary-probing semantic step, drop a step.
        5 => {
            let strategy = AdaptiveStrategy::ALL[(next_rand(rng) % 3) as usize];
            let plan = spec.attack.clone().unwrap_or_default();
            if plan.steps.len() >= 4 {
                return None;
            }
            spec.attack = Some(plan.step(
                AttackStep::new(AttackBehavior::Adaptive { strategy }).actors(ActorRange::all()),
            ));
        }
        6 => {
            let plan = spec.attack.as_mut()?;
            if plan.steps.is_empty() {
                return None;
            }
            let index = (next_rand(rng) as usize) % plan.steps.len();
            let strategy = AdaptiveStrategy::ALL[(next_rand(rng) % 3) as usize];
            plan.steps[index].behavior = AttackBehavior::Adaptive { strategy };
        }
        7 => {
            let plan = spec.attack.clone().unwrap_or_default();
            if plan.steps.len() >= 4 {
                return None;
            }
            spec.attack = Some(
                plan.step(
                    AttackStep::new(AttackBehavior::Semantic {
                        strategy: SemanticStrategy::Boundary,
                    })
                    .actors(ActorRange::all()),
                ),
            );
        }
        8 => {
            let plan = spec.attack.as_ref()?;
            if plan.steps.len() < 2 {
                return None;
            }
            let index = (next_rand(rng) as usize) % plan.steps.len();
            spec.attack = Some(plan.without_step(index));
        }
        // Identifier-layout move: the reverse of the shrinker's simplification.
        _ => {
            if case.protocol.needs_consecutive_ids() {
                return None;
            }
            spec.id_space = match spec.id_space {
                IdSpace::AdversaryLow { .. } => IdSpace::default(),
                _ => IdSpace::AdversaryLow { stride: 97 },
            };
        }
    }
    if case.protocol.needs_consecutive_ids() {
        spec.id_space = IdSpace::Consecutive;
    }
    crate::fuzz::rebind_crash_victims(spec);
    Some(next)
}

/// One restart's private result, merged in restart order by [`search_grid`].
struct RestartResult {
    trajectory: Vec<SearchStep>,
    /// An *admissible* violation — the prize; ends the restart immediately.
    violating: Option<FuzzCase>,
    /// The first inadmissible (boundary) violation stumbled on while climbing.
    /// Boundary demonstrations are cheap — one mutation past `n = 3f` or one
    /// crash too many — so they are recorded without ending the climb.
    boundary_hit: Option<FuzzCase>,
    evaluations: u64,
}

fn evaluate(case: &FuzzCase) -> (bool, Vec<u64>) {
    let report = run_case(case);
    let violation = !replay_failures(case, &report).is_empty();
    (violation, relevant_margins(case, &report))
}

/// The restart's starting point: the first grid case (scanning from a
/// seed-derived offset, wrapping) whose family is the restart's assigned one —
/// restarts stripe across all ten families so every oracle gets climbed no
/// matter how the grid orders its axes.
fn seed_case(grid: &ScenarioGrid<ProtocolId>, config: &SearchConfig, restart: u64) -> FuzzCase {
    let family = ProtocolId::ALL[(restart % ProtocolId::ALL.len() as u64) as usize];
    let offset = derive_seed(config.base_seed, restart ^ 0x00A1_1CE5) % grid.len();
    for probe in 0..grid.len() {
        let case = grid.case((offset + probe) % grid.len());
        if case.protocol == family {
            return FuzzCase::from_sweep(&case);
        }
    }
    FuzzCase::from_sweep(&grid.case(offset))
}

fn run_restart(
    grid: &ScenarioGrid<ProtocolId>,
    config: &SearchConfig,
    restart: u64,
) -> RestartResult {
    let mut rng = derive_seed(config.base_seed, restart);
    let mut current = seed_case(grid, config, restart);
    let mut trajectory = Vec::new();
    let mut boundary_hit: Option<FuzzCase> = None;
    let mut evaluations = 0u64;

    let (violation, margins) = evaluate(&current);
    evaluations += 1;
    let mut current_fitness = fitness(&current, violation, &margins);
    trajectory.push(SearchStep {
        restart,
        step: 0,
        case: current.describe(),
        min_margin: margins.iter().copied().min().unwrap_or(u64::MAX),
        margin_sum: margins.iter().fold(0u64, |a, &m| a.saturating_add(m)),
        violation,
        accepted: true,
    });
    if violation {
        if current.spec.admissible() {
            return RestartResult {
                trajectory,
                violating: Some(current),
                boundary_hit,
                evaluations,
            };
        }
        boundary_hit = Some(current.clone());
        // The climb cannot stand on a boundary violation (its fitness would
        // beat every lawful candidate); treat the position as worst-possible
        // so the first applicable mutation moves off it.
        current_fitness = (u64::MAX, u64::MAX, u64::MAX);
    }

    for step in 1..=config.steps {
        // Try a handful of rolls until one yields an applicable move; a step
        // with no applicable move is recorded as a rejected no-op.
        let mut candidate = None;
        for _ in 0..8 {
            let roll = next_rand(&mut rng);
            if let Some(mutated) = mutate(&current, roll, &mut rng) {
                candidate = Some(mutated);
                break;
            }
        }
        let Some(candidate) = candidate else {
            continue;
        };
        let (violation, margins) = evaluate(&candidate);
        evaluations += 1;
        let candidate_fitness = fitness(&candidate, violation, &margins);
        // A violated *admissible* candidate ends the restart; a violated
        // boundary candidate is recorded but never climbed onto (its margins
        // are vacuous — the theorems are not asserted out there). The same
        // vacuousness keeps the climb from *standing* on a passing inadmissible
        // case: from admissible ground, a mutation across the `n > 3f` line is
        // evaluated (it may be the boundary demonstration) but never accepted,
        // so the walk stays where the margins mean something.
        let admissible_violation = violation && candidate.spec.admissible();
        let lawful = candidate.spec.admissible() || !current.spec.admissible();
        let accepted = !violation && lawful && candidate_fitness <= current_fitness;
        trajectory.push(SearchStep {
            restart,
            step,
            case: candidate.describe(),
            min_margin: margins.iter().copied().min().unwrap_or(u64::MAX),
            margin_sum: margins.iter().fold(0u64, |a, &m| a.saturating_add(m)),
            violation,
            accepted,
        });
        if admissible_violation {
            return RestartResult {
                trajectory,
                violating: Some(candidate),
                boundary_hit,
                evaluations,
            };
        }
        if violation && boundary_hit.is_none() {
            boundary_hit = Some(candidate);
        } else if accepted {
            current = candidate;
            current_fitness = candidate_fitness;
        }
    }

    RestartResult {
        trajectory,
        violating: None,
        boundary_hit,
        evaluations,
    }
}

/// Runs the margin-guided search seeded from the given grid. Restarts fan out
/// across `config.workers` threads; results are merged in restart order, so
/// the outcome is byte-identical for any worker count (same contract as
/// [`run_trials`]). Violating cases found by the climbs are shrunk through the
/// property-id-preserving shrinker over [`replay_failures`] — the same oracle
/// the `--replay` path uses — and deduped by protocol and violated property
/// set.
pub fn search_grid(grid: &ScenarioGrid<ProtocolId>, config: &SearchConfig) -> SearchOutcome {
    let sweep = SweepConfig {
        trials: config.restarts,
        base_seed: config.base_seed,
        workers: config.workers,
    };
    let results: Vec<RestartResult> =
        run_trials(&sweep, |restart, _seed| run_restart(grid, config, restart));

    let mut trajectory = Vec::new();
    let mut evaluations = 0u64;
    let mut admissible_hits = Vec::new();
    let mut boundary_hits = Vec::new();
    for result in results {
        trajectory.extend(result.trajectory);
        evaluations += result.evaluations;
        admissible_hits.extend(result.violating);
        boundary_hits.extend(result.boundary_hit);
    }

    // Admissible violations are the prize; boundary demonstrations fill the
    // remaining counterexample slots. Both shrink through the same
    // property-id-preserving shrinker and dedup by (family, property set).
    let mut counterexamples: Vec<Counterexample> = Vec::new();
    let mut seen: Vec<(ProtocolId, Vec<String>)> = Vec::new();
    for case in admissible_hits.into_iter().chain(boundary_hits) {
        if counterexamples.len() >= config.max_counterexamples {
            break;
        }
        let counterexample = shrink_case_with(&case, &|candidate| {
            let report = run_case(candidate);
            replay_failures(candidate, &report)
        });
        let mut ids: Vec<String> = counterexample
            .failures
            .iter()
            .map(|f| crate::fuzz::property_id(f).to_string())
            .collect();
        ids.sort();
        ids.dedup();
        let key = (counterexample.shrunk.protocol, ids);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        counterexamples.push(counterexample);
    }

    SearchOutcome {
        evaluations,
        trajectory,
        counterexamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::boundary_grid;
    use uba_simnet::attack::AttackPlan;

    #[test]
    fn mutations_preserve_consecutive_id_families() {
        let grid = boundary_grid(true);
        let case = FuzzCase::from_sweep(&grid.case(0));
        let mut rng = 7u64;
        for roll in 0..40u64 {
            if let Some(mutated) = mutate(&case, roll, &mut rng) {
                if mutated.protocol.needs_consecutive_ids() {
                    assert_eq!(mutated.spec.id_space, IdSpace::Consecutive);
                }
            }
        }
    }

    #[test]
    fn the_adaptive_move_adds_a_serialisable_step() {
        let grid = boundary_grid(true);
        let case = FuzzCase::from_sweep(&grid.case(0));
        let mut rng = 3u64;
        let mutated = mutate(&case, 5, &mut rng).expect("adaptive move applies");
        let plan = mutated.spec.attack.expect("plan exists");
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s.behavior, AttackBehavior::Adaptive { .. })));
        let json = serde_json::to_string(&plan).unwrap();
        let back: AttackPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
