//! A minimal plain-text table used by the experiment harness.

use std::fmt;

/// A titled table of rows rendered as aligned plain text (the format copied into
/// `EXPERIMENTS.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. "E4: consensus rounds vs f").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must have as many cells as there are headers.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(cells);
    }

    /// Column widths needed to align the table.
    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let widths = self.widths();
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = Table::new("demo", &["n", "rounds"]);
        table.push_row(vec!["4".into(), "7".into()]);
        table.push_row(vec!["100".into(), "12".into()]);
        let text = table.to_string();
        assert!(text.contains("## demo"));
        assert!(text.contains("n    rounds"));
        assert!(text.contains("100  12"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.push_row(vec!["1".into()]);
    }
}
