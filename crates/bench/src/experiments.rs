//! The E1–E10 experiment suite (see `DESIGN.md` for the claim ↔ experiment map).
//!
//! Every experiment is a pure, deterministic function of a seed and returns a
//! [`Table`]; the `experiments` binary prints them and `EXPERIMENTS.md` records the
//! outcomes next to the corresponding paper claims.

use uba_baselines::{DolevApprox, KnownRotor, PhaseKing, StBroadcast};
use uba_core::impossibility::{disagreement_rate, run_partition_experiment, TimingModel};
use uba_core::quorum::max_faults;
use uba_core::runner::{
    run_approx, run_broadcast_correct_source, run_broadcast_equivocating_source, run_consensus,
    run_iterated_approx, run_rotor, AdversaryKind, Scenario,
};
use uba_core::{ParallelConsensus, TotalOrderNode};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, NodeId, Protocol, SyncEngine};

use crate::table::Table;

const SEED: u64 = 2021;

/// E1 — reliable broadcast: correctness, unforgeability and relay across system sizes
/// and source behaviours (Theorem 1).
pub fn e1_reliable_broadcast() -> Table {
    let mut table = Table::new(
        "E1: reliable broadcast properties (n > 3f, f = max)",
        &["n", "f", "source", "consistent", "accepted", "rounds", "messages"],
    );
    for &n in &[4usize, 7, 13, 25, 49] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, SEED + n as u64);
        let correct = run_broadcast_correct_source(&scenario, 42, 12).expect("run completes");
        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            "correct".into(),
            correct.consistent.to_string(),
            format!("{:?}", correct.accepted[0]),
            correct.rounds.to_string(),
            correct.messages.to_string(),
        ]);
        let equivocating =
            run_broadcast_equivocating_source(&scenario, 1, 2, 12).expect("run completes");
        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            "equivocating".into(),
            equivocating.consistent.to_string(),
            format!("{:?}", equivocating.accepted[0]),
            equivocating.rounds.to_string(),
            equivocating.messages.to_string(),
        ]);
    }
    table
}

/// E2 — the resiliency boundary: the guarantees hold for `n > 3f` and are allowed to
/// fail beyond it.
pub fn e2_resiliency_boundary() -> Table {
    let mut table = Table::new(
        "E2: resiliency boundary (consensus under split-vote adversary, n = 10)",
        &["n", "f", "n > 3f", "terminated", "agreement", "validity", "rounds"],
    );
    let n = 10usize;
    for f in 0..=4usize {
        let correct = n - f;
        let scenario = Scenario { max_rounds: 300, ..Scenario::new(correct, f, SEED + f as u64) };
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        match run_consensus(&scenario, &inputs, AdversaryKind::SplitVote) {
            Ok(report) => table.push_row(vec![
                n.to_string(),
                f.to_string(),
                (n > 3 * f).to_string(),
                "true".into(),
                report.agreement.to_string(),
                report.validity.to_string(),
                report.rounds.to_string(),
            ]),
            Err(_) => table.push_row(vec![
                n.to_string(),
                f.to_string(),
                (n > 3 * f).to_string(),
                "false (stuck)".into(),
                "-".into(),
                "-".into(),
                ">300".into(),
            ]),
        }
    }
    table
}

/// E3 — rotor-coordinator: termination in `O(n)` rounds, existence of a good round,
/// and cost relative to the trivial known-`f` rotor (Theorem 2).
pub fn e3_rotor() -> Table {
    let mut table = Table::new(
        "E3: rotor-coordinator rounds vs n (announce-then-silent adversary, f = max)",
        &["n", "f", "rounds", "coordinators", "good round", "messages", "known-rotor rounds"],
    );
    for &n in &[4usize, 8, 16, 32, 64] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, SEED + n as u64);
        let report = run_rotor(&scenario, AdversaryKind::AnnounceThenSilent).expect("terminates");

        // Baseline: rotating through f + 1 known, consecutive identifiers.
        let ids = IdSpace::Consecutive.generate(n, 0);
        let nodes: Vec<_> =
            ids[..n - f].iter().map(|&id| KnownRotor::new(id, f, id.raw())).collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[n - f..].to_vec());
        engine.run_until_all_terminated(3 * n as u64 + 10).expect("baseline terminates");

        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            report.rounds.to_string(),
            report.selected.to_string(),
            report.good_round.to_string(),
            report.messages.to_string(),
            engine.round().to_string(),
        ]);
    }
    table
}

/// E4 — consensus: round complexity grows linearly in `f`, agreement and validity hold
/// under every adversary (Theorem 3).
pub fn e4_consensus() -> Table {
    let mut table = Table::new(
        "E4: consensus rounds vs f (n = 3f + 1, split inputs)",
        &["f", "n", "adversary", "rounds", "messages", "agreement", "validity"],
    );
    for f in 1..=5usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        for kind in [AdversaryKind::AnnounceThenSilent, AdversaryKind::SplitVote] {
            let scenario = Scenario::new(correct, f, SEED + (f * 7) as u64);
            let report = run_consensus(&scenario, &inputs, kind).expect("terminates");
            table.push_row(vec![
                f.to_string(),
                n.to_string(),
                format!("{kind:?}"),
                report.rounds.to_string(),
                report.messages.to_string(),
                report.agreement.to_string(),
                report.validity.to_string(),
            ]);
        }
    }
    table
}

/// E5 — the cost of not knowing `n` and `f`: id-only consensus vs the classic
/// phase-king on identical workloads (Section XII's "does not change much" claim).
pub fn e5_consensus_vs_phase_king() -> Table {
    let mut table = Table::new(
        "E5: id-only consensus vs phase-king (identical workloads, silent-after-announce faults)",
        &["f", "n", "id-only rounds", "id-only messages", "phase-king rounds", "phase-king messages"],
    );
    for f in 1..=4usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let scenario = Scenario::new(correct, f, SEED + f as u64);
        let ours = run_consensus(&scenario, &inputs, AdversaryKind::AnnounceThenSilent)
            .expect("terminates");

        let ids = IdSpace::Consecutive.generate(n, 0);
        let nodes: Vec<_> = ids[..correct]
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| PhaseKing::new(id, ids.clone(), f, x))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[correct..].to_vec());
        engine.run_until_all_terminated(300).expect("baseline terminates");

        table.push_row(vec![
            f.to_string(),
            n.to_string(),
            ours.rounds.to_string(),
            ours.messages.to_string(),
            engine.round().to_string(),
            engine.metrics().correct_messages.to_string(),
        ]);
    }
    table
}

/// E6 — approximate agreement: outputs stay in range and the range halves per
/// iteration; the contraction matches the known-`f` Dolev et al. baseline (Theorem 4).
pub fn e6_approx() -> Table {
    let mut table = Table::new(
        "E6: approximate agreement contraction (n = 16, f = 5, Byzantine outliers)",
        &["algorithm", "iteration", "correct-value spread", "in range"],
    );
    let correct = 11usize;
    let f = 5usize;
    let inputs: Vec<f64> = (0..correct).map(|i| i as f64 * 10.0).collect();
    let scenario = Scenario::new(correct, f, SEED);

    // Single-shot: ours vs Dolev baseline.
    let ours = run_approx(&scenario, &inputs).expect("completes");
    table.push_row(vec![
        "id-only (Alg. 4)".into(),
        "1".into(),
        format!("{:.2}", ours.output_range.1 - ours.output_range.0),
        ours.outputs_in_range.to_string(),
    ]);

    let ids = IdSpace::Consecutive.generate(correct + f, 0);
    let nodes: Vec<_> = ids[..correct]
        .iter()
        .zip(&inputs)
        .map(|(&id, &x)| DolevApprox::new(id, f, (x * 1e6) as i64))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[correct..].to_vec());
    engine.run_until_all_output(4).expect("baseline completes");
    let outputs: Vec<f64> =
        engine.outputs().into_iter().map(|(_, o)| o.unwrap() as f64 / 1e6).collect();
    let lo = outputs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = outputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    table.push_row(vec![
        "Dolev et al. (knows f)".into(),
        "1".into(),
        format!("{:.2}", hi - lo),
        (lo >= 0.0 && hi <= 100.0).to_string(),
    ]);

    // Iterated convergence of the id-only algorithm.
    let spreads = run_iterated_approx(&scenario, &inputs, 6).expect("completes");
    for (i, spread) in spreads.iter().enumerate() {
        table.push_row(vec![
            "id-only iterated".into(),
            (i + 1).to_string(),
            format!("{spread:.3}"),
            "true".into(),
        ]);
    }
    table
}

/// E7 — synchrony is necessary: disagreement probability by timing model
/// (Lemmas 14–15).
pub fn e7_impossibility() -> Table {
    let mut table = Table::new(
        "E7: partition construction — disagreement rate by timing model (5 trials each)",
        &["|A|", "|B|", "model", "disagreement rate", "example ticks", "undelivered msgs"],
    );
    for &(a, b) in &[(2usize, 2usize), (4, 4), (8, 8), (4, 12)] {
        for model in [
            TimingModel::Synchronous,
            TimingModel::SemiSynchronous { cross_delay: 1_000 },
            TimingModel::Asynchronous,
        ] {
            let rate = disagreement_rate(a, b, model, 5, SEED);
            let example = run_partition_experiment(a, b, model, SEED).expect("completes");
            table.push_row(vec![
                a.to_string(),
                b.to_string(),
                format!("{model:?}"),
                format!("{rate:.2}"),
                example.ticks.to_string(),
                example.undelivered.to_string(),
            ]);
        }
    }
    table
}

/// E8 — parallel consensus: validity, agreement and termination for growing numbers of
/// concurrent instances, with Byzantine ghost-pair injection (Theorem 5).
pub fn e8_parallel_consensus() -> Table {
    let mut table = Table::new(
        "E8: parallel consensus (n = 9, f = 2, ghost-pair injection)",
        &["instances", "rounds", "pairs output", "ghost pairs output", "agreement"],
    );
    for &k in &[1usize, 4, 16, 64] {
        let correct = 7usize;
        let f = 2usize;
        let ids = IdSpace::default().generate(correct + f, SEED + k as u64);
        let pairs: Vec<(u64, u64)> = (0..k as u64).map(|i| (i, i * 10)).collect();
        let nodes: Vec<_> = ids[..correct]
            .iter()
            .map(|&id| ParallelConsensus::new(id, pairs.clone()))
            .collect();
        let ghosts =
            uba_core::adversaries::GhostPairInjector::new(vec![(1_000_001, 13u64), (1_000_002, 17u64)]);
        let mut engine = SyncEngine::new(nodes, ghosts, ids[correct..].to_vec());
        engine.run_until_all_terminated(400).expect("terminates");
        let decisions: Vec<_> =
            engine.outputs().into_iter().map(|(_, d)| d.unwrap()).collect();
        let agreement = decisions.windows(2).all(|w| w[0].pairs == w[1].pairs);
        let ghost_output =
            decisions[0].pairs.keys().filter(|id| **id >= 1_000_000).count();
        table.push_row(vec![
            k.to_string(),
            engine.round().to_string(),
            decisions[0].pairs.len().to_string(),
            ghost_output.to_string(),
            agreement.to_string(),
        ]);
    }
    table
}

/// E9 — dynamic total ordering: chain-prefix and chain-growth under churn, and the
/// observed finality lag vs the paper's `5|S|/2 + 2` bound (Theorem 6).
pub fn e9_total_order() -> Table {
    let mut table = Table::new(
        "E9: dynamic total ordering (events every round, join at round 12, leave at round 24)",
        &["founders", "rounds run", "chain length", "chain-prefix", "joiner in S", "finality lag"],
    );
    for &founders in &[4usize, 6, 8] {
        let ids = IdSpace::default().generate(founders, SEED + founders as u64);
        let nodes: Vec<TotalOrderNode<u64>> =
            ids.iter().map(|&id| TotalOrderNode::founding(id)).collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        let joiner = NodeId::new(999_999);
        let total_rounds = 70u64;
        for round in 0..total_rounds {
            if round == 12 {
                engine.add_node(TotalOrderNode::joining(joiner)).unwrap();
            }
            if round == 24 {
                let leaver = ids[founders - 1];
                if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == leaver) {
                    node.announce_leave();
                }
            }
            // One event per round, submitted by rotating founders.
            let submitter = ids[(round as usize) % (founders - 1)];
            if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == submitter) {
                node.submit_event(round);
            }
            engine.run_rounds(1).unwrap();
        }
        let chains: Vec<Vec<_>> = engine
            .nodes()
            .iter()
            .filter(|n| n.id() != ids[founders - 1])
            .map(|n| n.chain().to_vec())
            .collect();
        let prefix_ok = uba_core::total_order::chains_agree(&chains);
        let reference = &chains[0];
        let node0 = &engine.nodes()[0];
        let joiner_known = node0.members().contains(&joiner);
        let lag = node0.round() - node0.finalized_upto();
        table.push_row(vec![
            founders.to_string(),
            total_rounds.to_string(),
            reference.len().to_string(),
            prefix_ok.to_string(),
            joiner_known.to_string(),
            lag.to_string(),
        ]);
    }
    table
}

/// E10 — message complexity of reliable broadcast: id-only Algorithm 1 vs the classic
/// Srikanth–Toueg broadcast that knows `f` (Section XII).
pub fn e10_message_complexity() -> Table {
    let mut table = Table::new(
        "E10: reliable broadcast message complexity (correct source, messages per node per round)",
        &["n", "f", "id-only messages", "Srikanth-Toueg messages", "ratio"],
    );
    for &n in &[4usize, 7, 13, 25, 49] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, SEED + n as u64);
        let ours = run_broadcast_correct_source(&scenario, 7, 8).expect("completes");

        let ids = IdSpace::Consecutive.generate(n, 0);
        let source = ids[0];
        let nodes: Vec<_> = ids[..n - f]
            .iter()
            .map(|&id| {
                if id == source {
                    StBroadcast::sender(id, f, 7u64)
                } else {
                    StBroadcast::receiver(id, source, f)
                }
            })
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[n - f..].to_vec());
        engine.run_rounds(8).expect("completes");
        let st_messages = engine.metrics().correct_messages;
        let ratio = ours.messages as f64 / st_messages.max(1) as f64;
        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            ours.messages.to_string(),
            st_messages.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    table
}

/// All experiments, in order, as `(short name, function)` pairs.
pub fn all_experiments() -> Vec<(&'static str, fn() -> Table)> {
    vec![
        ("e1", e1_reliable_broadcast as fn() -> Table),
        ("e2", e2_resiliency_boundary),
        ("e3", e3_rotor),
        ("e4", e4_consensus),
        ("e5", e5_consensus_vs_phase_king),
        ("e6", e6_approx),
        ("e7", e7_impossibility),
        ("e8", e8_parallel_consensus),
        ("e9", e9_total_order),
        ("e10", e10_message_complexity),
        ("e11", crate::experiments_ext::e11_dynamic_approx_churn),
        ("e12", crate::experiments_ext::e12_resilience_matrix),
        ("e13", crate::experiments_ext::e13_adaptive_attackers),
        ("e14", crate::experiments_ext::e14_parallel_scaling),
    ]
}

/// Looks up one experiment by its short name (`"e1"` … `"e14"`).
pub fn experiment_by_name(name: &str) -> Option<fn() -> Table> {
    all_experiments().into_iter().find(|(n, _)| *n == name).map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_fourteen_experiments() {
        let all = all_experiments();
        assert_eq!(all.len(), 14);
        assert!(experiment_by_name("e1").is_some());
        assert!(experiment_by_name("e10").is_some());
        assert!(experiment_by_name("e14").is_some());
        assert!(experiment_by_name("e15").is_none());
    }

    #[test]
    fn quick_experiments_produce_rows() {
        // Only the fast experiments are exercised here; the full suite runs via the
        // `experiments` binary and the benches.
        let e7 = e7_impossibility();
        assert_eq!(e7.rows.len(), 12);
        let e2 = e2_resiliency_boundary();
        assert_eq!(e2.rows.len(), 5);
    }
}
