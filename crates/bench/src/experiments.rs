//! The E1–E10 experiment suite (see `DESIGN.md` for the claim ↔ experiment map).
//!
//! Every experiment is a pure, deterministic function of a seed and returns a
//! [`Table`]; the `experiments` binary prints them and `EXPERIMENTS.md` records the
//! outcomes next to the corresponding paper claims. All experiments drive their
//! executions through the unified [`Simulation`] builder, so an id-only protocol and
//! its known-`(n, f)` baseline run the *same* scenario description head-to-head.

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_core::impossibility::{disagreement_rate, run_partition_experiment, TimingModel};
use uba_core::quorum::max_faults;
use uba_core::sim::{
    AdversaryKind, ParallelConsensusFactory, RunReport, ScenarioBuilder, ScenarioExt, Simulation,
    TotalOrderFactory, TotalOrderPlan,
};
use uba_simnet::{ChurnEvent, ChurnSchedule, IdSpace, NodeId};

use crate::table::Table;

const SEED: u64 = 2021;

fn scenario(correct: usize, byzantine: usize, seed: u64) -> ScenarioBuilder {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .seed(seed)
}

/// The same scenario shape pointed at a known-`(n, f)` baseline: consecutive
/// identifiers (the knowledge the classic algorithms assume), seed 0 as the historic
/// experiment tables used.
fn baseline_scenario(correct: usize, byzantine: usize) -> ScenarioBuilder {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .ids(IdSpace::Consecutive)
        .seed(0)
}

/// Asserts a run met its stop condition. `Harness::run` reports cap exhaustion as a
/// *status* rather than an error, so experiments that publish absolute numbers must
/// check it explicitly — otherwise a livelocked run would be tabulated as a result.
fn completed(report: RunReport, what: &str) -> RunReport {
    assert!(
        report.completed(),
        "{what} hit its round cap ({:?}) instead of finishing",
        report.status
    );
    report
}

fn accepted_preview(report: &RunReport) -> String {
    let section = report.broadcast.as_ref().expect("broadcast section");
    let values: Vec<u64> = section
        .accepted
        .first()
        .map(|set| set.values.iter().map(|&(message, _)| message).collect())
        .unwrap_or_default();
    format!("{values:?}")
}

/// E1 — reliable broadcast: correctness, unforgeability and relay across system sizes
/// and source behaviours (Theorem 1).
pub fn e1_reliable_broadcast() -> Table {
    let mut table = Table::new(
        "E1: reliable broadcast properties (n > 3f, f = max)",
        &[
            "n",
            "f",
            "source",
            "consistent",
            "accepted",
            "rounds",
            "messages",
        ],
    );
    for &n in &[4usize, 7, 13, 25, 49] {
        let f = max_faults(n);
        for equivocate in [false, true] {
            let builder =
                scenario(n - f, f, SEED + n as u64).adversary(AdversaryKind::AnnounceThenSilent);
            let report = if equivocate {
                builder.broadcast_equivocating(1, 2).rounds(12).run()
            } else {
                builder.broadcast(42).rounds(12).run()
            }
            .expect("run completes");
            let section = report.broadcast.as_ref().expect("broadcast section");
            table.push_row(vec![
                n.to_string(),
                f.to_string(),
                if equivocate {
                    "equivocating".into()
                } else {
                    "correct".into()
                },
                section.consistent.to_string(),
                accepted_preview(&report),
                report.rounds.to_string(),
                report.messages.correct.to_string(),
            ]);
        }
    }
    table
}

/// E2 — the resiliency boundary: the guarantees hold for `n > 3f` and are allowed to
/// fail beyond it.
pub fn e2_resiliency_boundary() -> Table {
    let mut table = Table::new(
        "E2: resiliency boundary (consensus under split-vote adversary, n = 10)",
        &[
            "n",
            "f",
            "n > 3f",
            "terminated",
            "agreement",
            "validity",
            "rounds",
        ],
    );
    let n = 10usize;
    for f in 0..=4usize {
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let report = scenario(correct, f, SEED + f as u64)
            .max_rounds(300)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .expect("runs never violate engine rules");
        if report.completed() {
            let section = report.consensus.as_ref().expect("consensus section");
            table.push_row(vec![
                n.to_string(),
                f.to_string(),
                (n > 3 * f).to_string(),
                "true".into(),
                section.agreement.to_string(),
                section.validity.to_string(),
                report.rounds.to_string(),
            ]);
        } else {
            table.push_row(vec![
                n.to_string(),
                f.to_string(),
                (n > 3 * f).to_string(),
                "false (stuck)".into(),
                "-".into(),
                "-".into(),
                ">300".into(),
            ]);
        }
    }
    table
}

/// E3 — rotor-coordinator: termination in `O(n)` rounds, existence of a good round,
/// and cost relative to the trivial known-`f` rotor (Theorem 2).
pub fn e3_rotor() -> Table {
    let mut table = Table::new(
        "E3: rotor-coordinator rounds vs n (announce-then-silent adversary, f = max)",
        &[
            "n",
            "f",
            "rounds",
            "coordinators",
            "good round",
            "messages",
            "known-rotor rounds",
        ],
    );
    for &n in &[4usize, 8, 16, 32, 64] {
        let f = max_faults(n);
        let report = scenario(n - f, f, SEED + n as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .rotor()
            .run()
            .expect("terminates");
        let report = completed(report, "E3 id-only rotor");
        let section = report.rotor.as_ref().expect("rotor section");

        // Baseline: rotating through f + 1 known, consecutive identifiers.
        let baseline = baseline_scenario(n - f, f)
            .max_rounds(3 * n as u64 + 10)
            .build(KnownRotorFactory)
            .run()
            .expect("baseline terminates");
        let baseline = completed(baseline, "E3 known-rotor baseline");

        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            report.rounds.to_string(),
            section.selected.to_string(),
            section.good_round.to_string(),
            report.messages.correct.to_string(),
            baseline.rounds.to_string(),
        ]);
    }
    table
}

/// E4 — consensus: round complexity grows linearly in `f`, agreement and validity hold
/// under every adversary (Theorem 3).
pub fn e4_consensus() -> Table {
    let mut table = Table::new(
        "E4: consensus rounds vs f (n = 3f + 1, split inputs)",
        &[
            "f",
            "n",
            "adversary",
            "rounds",
            "messages",
            "agreement",
            "validity",
        ],
    );
    for f in 1..=5usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        for kind in [AdversaryKind::AnnounceThenSilent, AdversaryKind::SplitVote] {
            let report = scenario(correct, f, SEED + (f * 7) as u64)
                .adversary(kind)
                .consensus(&inputs)
                .run()
                .expect("terminates");
            let report = completed(report, "E4 consensus");
            let section = report.consensus.as_ref().expect("consensus section");
            table.push_row(vec![
                f.to_string(),
                n.to_string(),
                format!("{kind:?}"),
                report.rounds.to_string(),
                report.messages.correct.to_string(),
                section.agreement.to_string(),
                section.validity.to_string(),
            ]);
        }
    }
    table
}

/// E5 — the cost of not knowing `n` and `f`: id-only consensus vs the classic
/// phase-king on identical workloads (Section XII's "does not change much" claim).
pub fn e5_consensus_vs_phase_king() -> Table {
    let mut table = Table::new(
        "E5: id-only consensus vs phase-king (identical workloads, silent-after-announce faults)",
        &[
            "f",
            "n",
            "id-only rounds",
            "id-only messages",
            "phase-king rounds",
            "phase-king messages",
        ],
    );
    for f in 1..=4usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let ours = scenario(correct, f, SEED + f as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .consensus(&inputs)
            .run()
            .expect("terminates");
        let ours = completed(ours, "E5 id-only consensus");

        let baseline = baseline_scenario(correct, f)
            .max_rounds(300)
            .build(PhaseKingFactory::new(inputs.clone()))
            .run()
            .expect("baseline terminates");
        let baseline = completed(baseline, "E5 phase-king baseline");

        table.push_row(vec![
            f.to_string(),
            n.to_string(),
            ours.rounds.to_string(),
            ours.messages.correct.to_string(),
            baseline.rounds.to_string(),
            baseline.messages.correct.to_string(),
        ]);
    }
    table
}

/// E6 — approximate agreement: outputs stay in range and the range halves per
/// iteration; the contraction matches the known-`f` Dolev et al. baseline (Theorem 4).
pub fn e6_approx() -> Table {
    let mut table = Table::new(
        "E6: approximate agreement contraction (n = 16, f = 5, Byzantine outliers)",
        &["algorithm", "iteration", "correct-value spread", "in range"],
    );
    let correct = 11usize;
    let f = 5usize;
    let inputs: Vec<f64> = (0..correct).map(|i| i as f64 * 10.0).collect();

    // Single-shot: ours vs Dolev baseline.
    let ours = scenario(correct, f, SEED)
        .adversary(AdversaryKind::Worst)
        .approx(&inputs)
        .run()
        .expect("completes");
    let ours = completed(ours, "E6 id-only approx");
    let section = ours.approx.as_ref().expect("approx section");
    table.push_row(vec![
        "id-only (Alg. 4)".into(),
        "1".into(),
        format!("{:.2}", section.output_range.1 - section.output_range.0),
        section.outputs_in_range.to_string(),
    ]);

    let baseline = baseline_scenario(correct, f)
        .max_rounds(4)
        .build(DolevApproxFactory::new(inputs.clone()))
        .run()
        .expect("baseline completes");
    let baseline = completed(baseline, "E6 Dolev baseline");
    let baseline_section = baseline.approx.as_ref().expect("approx section");
    table.push_row(vec![
        "Dolev et al. (knows f)".into(),
        "1".into(),
        format!(
            "{:.2}",
            baseline_section.output_range.1 - baseline_section.output_range.0
        ),
        baseline_section.outputs_in_range.to_string(),
    ]);

    // Iterated convergence of the id-only algorithm.
    let spreads = completed(
        scenario(correct, f, SEED)
            .iterated_approx(&inputs, 6)
            .run()
            .expect("completes"),
        "E6 iterated approx",
    )
    .spreads
    .expect("spread section")
    .per_iteration;
    for (i, spread) in spreads.iter().enumerate() {
        table.push_row(vec![
            "id-only iterated".into(),
            (i + 1).to_string(),
            format!("{spread:.3}"),
            "true".into(),
        ]);
    }
    table
}

/// E7 — synchrony is necessary: disagreement probability by timing model
/// (Lemmas 14–15).
pub fn e7_impossibility() -> Table {
    let mut table = Table::new(
        "E7: partition construction — disagreement rate by timing model (5 trials each)",
        &[
            "|A|",
            "|B|",
            "model",
            "disagreement rate",
            "example ticks",
            "undelivered msgs",
        ],
    );
    for &(a, b) in &[(2usize, 2usize), (4, 4), (8, 8), (4, 12)] {
        for model in [
            TimingModel::Synchronous,
            TimingModel::SemiSynchronous { cross_delay: 1_000 },
            TimingModel::Asynchronous,
        ] {
            let rate = disagreement_rate(a, b, model, 5, SEED);
            let example = run_partition_experiment(a, b, model, SEED).expect("completes");
            table.push_row(vec![
                a.to_string(),
                b.to_string(),
                format!("{model:?}"),
                format!("{rate:.2}"),
                example.ticks.to_string(),
                example.undelivered.to_string(),
            ]);
        }
    }
    table
}

/// E8 — parallel consensus: validity, agreement and termination for growing numbers of
/// concurrent instances, with Byzantine ghost-pair injection (Theorem 5).
pub fn e8_parallel_consensus() -> Table {
    let mut table = Table::new(
        "E8: parallel consensus (n = 9, f = 2, ghost-pair injection)",
        &[
            "instances",
            "rounds",
            "pairs output",
            "ghost pairs output",
            "agreement",
        ],
    );
    for &k in &[1usize, 4, 16, 64] {
        let pairs: Vec<(u64, u64)> = (0..k as u64).map(|i| (i, i * 10)).collect();
        let report = scenario(7, 2, SEED + k as u64)
            .max_rounds(400)
            .adversary(AdversaryKind::Worst)
            .build(
                ParallelConsensusFactory::new(pairs)
                    .with_ghost_pairs(vec![(1_000_001, 13u64), (1_000_002, 17u64)]),
            )
            .run()
            .expect("terminates");
        let report = completed(report, "E8 parallel consensus");
        let section = report.parallel.as_ref().expect("parallel section");
        let first = section.decisions.first().expect("all nodes decided");
        let ghost_output = first
            .pairs
            .iter()
            .filter(|(id, _)| *id >= 1_000_000)
            .count();
        table.push_row(vec![
            k.to_string(),
            report.rounds.to_string(),
            first.pairs.len().to_string(),
            ghost_output.to_string(),
            section.agreement.to_string(),
        ]);
    }
    table
}

/// E9 — dynamic total ordering: chain-prefix and chain-growth under churn, and the
/// observed finality lag vs the paper's `5|S|/2 + 2` bound (Theorem 6).
pub fn e9_total_order() -> Table {
    let mut table = Table::new(
        "E9: dynamic total ordering (events every round, join at round 12, leave at round 24)",
        &[
            "founders",
            "rounds run",
            "chain length",
            "chain-prefix",
            "joiner in S",
            "finality lag",
        ],
    );
    for &founders in &[4usize, 6, 8] {
        let joiner = NodeId::new(999_999);
        let total_rounds = 70u64;
        // One event per round, submitted by rotating founders; one founder leaves
        // mid-run, and a fresh participant joins through the engine's churn plan.
        let mut plan = TotalOrderPlan::rounds(total_rounds);
        for round in 0..total_rounds {
            plan = plan.event(round + 1, (round as usize) % (founders - 1), round);
        }
        let plan = plan.leave(25, founders - 1);
        let churn = ChurnSchedule::empty().with(13, ChurnEvent::JoinCorrect(joiner));
        let mut harness = scenario(founders, 0, SEED + founders as u64)
            .max_rounds(total_rounds)
            .churn(churn)
            .build(TotalOrderFactory::new(plan));
        let report = harness.run().expect("run completes");
        let section = report.chain.as_ref().expect("chain section");
        let reference = section
            .lengths
            .iter()
            .map(|&(_, len)| len)
            .max()
            .unwrap_or(0);
        let node0 = &harness.nodes()[0];
        let joiner_known = node0.members().contains(&joiner);
        let lag = node0.round() - node0.finalized_upto();
        table.push_row(vec![
            founders.to_string(),
            total_rounds.to_string(),
            reference.to_string(),
            section.prefix_ok.to_string(),
            joiner_known.to_string(),
            lag.to_string(),
        ]);
    }
    table
}

/// E10 — message complexity of reliable broadcast: id-only Algorithm 1 vs the classic
/// Srikanth–Toueg broadcast that knows `f` (Section XII).
pub fn e10_message_complexity() -> Table {
    let mut table = Table::new(
        "E10: reliable broadcast message complexity (correct source, messages per node per round)",
        &[
            "n",
            "f",
            "id-only messages",
            "Srikanth-Toueg messages",
            "ratio",
        ],
    );
    for &n in &[4usize, 7, 13, 25, 49] {
        let f = max_faults(n);
        let ours = scenario(n - f, f, SEED + n as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .broadcast(7)
            .rounds(8)
            .run()
            .expect("completes");
        let ours = completed(ours, "E10 id-only broadcast");

        let baseline = baseline_scenario(n - f, f)
            .build(StBroadcastFactory::new(7))
            .rounds(8)
            .run()
            .expect("completes");
        let baseline = completed(baseline, "E10 Srikanth-Toueg baseline");

        let st_messages = baseline.messages.correct;
        let ratio = ours.messages.correct as f64 / st_messages.max(1) as f64;
        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            ours.messages.correct.to_string(),
            st_messages.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    table
}

/// All experiments, in order, as `(short name, function)` pairs.
#[allow(clippy::type_complexity)]
pub fn all_experiments() -> Vec<(&'static str, fn() -> Table)> {
    vec![
        ("e1", e1_reliable_broadcast as fn() -> Table),
        ("e2", e2_resiliency_boundary),
        ("e3", e3_rotor),
        ("e4", e4_consensus),
        ("e5", e5_consensus_vs_phase_king),
        ("e6", e6_approx),
        ("e7", e7_impossibility),
        ("e8", e8_parallel_consensus),
        ("e9", e9_total_order),
        ("e10", e10_message_complexity),
        ("e11", crate::experiments_ext::e11_dynamic_approx_churn),
        ("e12", crate::experiments_ext::e12_resilience_matrix),
        ("e13", crate::experiments_ext::e13_adaptive_attackers),
        ("e14", crate::experiments_ext::e14_parallel_scaling),
    ]
}

/// Looks up one experiment by its short name (`"e1"` … `"e14"`).
pub fn experiment_by_name(name: &str) -> Option<fn() -> Table> {
    all_experiments()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_fourteen_experiments() {
        let all = all_experiments();
        assert_eq!(all.len(), 14);
        assert!(experiment_by_name("e1").is_some());
        assert!(experiment_by_name("e10").is_some());
        assert!(experiment_by_name("e14").is_some());
        assert!(experiment_by_name("e15").is_none());
    }

    #[test]
    fn quick_experiments_produce_rows() {
        // Only the fast experiments are exercised here; the full suite runs via the
        // `experiments` binary and the benches.
        let e7 = e7_impossibility();
        assert_eq!(e7.rows.len(), 12);
        let e2 = e2_resiliency_boundary();
        assert_eq!(e2.rows.len(), 5);
    }
}
