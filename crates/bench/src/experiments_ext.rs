//! The extended experiment suite E11–E14: dynamic-network behaviour, Monte-Carlo
//! resilience, adaptive-attacker ablations and the parallel sweep harness itself.
//!
//! E1–E10 (in [`crate::experiments`]) validate the paper's theorems one by one; the
//! experiments here cover the claims that are quantified over *behaviour* rather than
//! over a single execution:
//!
//! * **E11** — Section XI's observation that approximate agreement keeps converging
//!   under churn, with the convergence/expansion balance set by the joiners' values;
//! * **E12** — the resiliency claim as a Monte-Carlo matrix: agreement/validity rates
//!   over many seeds for every scripted adversary, inside and outside `n > 3f`;
//! * **E13** — an ablation of adversary adaptivity: scripted (oblivious) strategies
//!   versus the rushing, traffic-aware attackers from `uba_core::attackers`;
//! * **E14** — the scaling of the parallel Monte-Carlo harness itself (wall-clock
//!   speedup versus worker count), which is infrastructure validation rather than a
//!   paper claim.

use std::time::Instant;

use uba_checker::check_run_report;
use uba_core::adversaries::{AnnounceThenSilent, PartialAnnounce, SplitVote};
use uba_core::attackers::{EquivocatingCoordinator, MinorityBooster};
use uba_core::consensus::ConsensusMessage;
use uba_core::dynamic_approx::{run_dynamic_approx, ChurnPlan};
use uba_core::sim::{AdversaryKind, ConsensusFactory, Simulation};
use uba_core::Real;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{Adversary, IdSpace, NodeId};

use crate::montecarlo::{ResilienceSweep, SweepConfig};
use crate::table::Table;
use crate::workload::{binary_inputs, rolling_churn_plan, uniform_reals};

const SEED: u64 = 2021;

/// E11 — approximate agreement in a dynamic network: final spread after 24 rounds for
/// increasingly aggressive churn (one join+leave every `period` rounds, joiner values
/// drawn from the original input range).
pub fn e11_dynamic_approx_churn() -> Table {
    let mut table = Table::new(
        "E11: dynamic approximate agreement under churn (n0 = 10, 24 churn rounds + 6 quiet rounds)",
        &[
            "churn period",
            "joins",
            "initial spread",
            "peak spread after a join",
            "spread 2 rounds after last join",
            "final spread",
        ],
    );
    let churn_rounds = 24u64;
    let total_rounds = churn_rounds + 6;
    for &period in &[0u64, 12, 6, 3] {
        let ids = IdSpace::default().generate(10, SEED);
        let inputs = uniform_reals(10, 0.0, 100.0, SEED + period);
        let initial: Vec<(NodeId, Real)> = ids
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| (id, Real::from_f64(x)))
            .collect();
        let plan = if period == 0 {
            ChurnPlan::none()
        } else {
            rolling_churn_plan(&ids, churn_rounds, period, 0.0, 100.0, SEED + period)
        };
        let report =
            run_dynamic_approx(&initial, &plan, total_rounds).expect("dynamic run completes");
        // Spread recorded right after a join round is the range expansion the joiner
        // caused; two rounds later one full exchange has absorbed it.
        let joins = plan.joins();
        let peak_after_join = joins
            .iter()
            .map(|&(round, _, _)| report.spread_per_round[round as usize - 1])
            .fold(0.0f64, f64::max);
        let after_last_join = joins
            .iter()
            .map(|&(round, _, _)| round)
            .max()
            .map(|round| report.spread_per_round[(round + 2) as usize - 1])
            .unwrap_or(0.0);
        table.push_row(vec![
            if period == 0 {
                "none".into()
            } else {
                period.to_string()
            },
            joins.len().to_string(),
            format!("{:.2}", report.spread_per_round[0]),
            format!("{:.3}", peak_after_join),
            format!("{:.4}", after_last_join),
            format!("{:.4}", report.final_spread()),
        ]);
    }
    table
}

/// E12 — Monte-Carlo resilience matrix: agreement and validity rates of consensus
/// over repeated seeds, for every scripted adversary, at the resiliency boundary
/// `n = 3f + 1`.
pub fn e12_resilience_matrix() -> Table {
    let mut table = Table::new(
        "E12: consensus agreement/validity rates over 16 seeds (n = 3f + 1)",
        &[
            "f",
            "adversary",
            "agreement",
            "validity",
            "rounds (mean ± ci)",
        ],
    );
    for &f in &[1usize, 2, 3] {
        for (name, adversary) in [
            ("silent", AdversaryKind::Silent),
            ("announce-then-silent", AdversaryKind::AnnounceThenSilent),
            ("partial-announce", AdversaryKind::PartialAnnounce),
            ("split-vote", AdversaryKind::SplitVote),
        ] {
            let sweep = ResilienceSweep {
                correct: 2 * f + 1,
                byzantine: f,
                adversary,
                config: SweepConfig::new(16, SEED + f as u64).with_workers(4),
            };
            let outcome = sweep.run();
            table.push_row(vec![
                f.to_string(),
                name.into(),
                outcome.agreement.display(),
                outcome.validity.display(),
                outcome.rounds.display(1),
            ]);
        }
    }
    table
}

/// Drives one consensus execution under an arbitrary adversary and verifies it with
/// the `uba-checker` oracle; returns `(rounds, messages, decided value)`.
///
/// This is the workhorse behind E13 and the `ablation_adversary` bench: it goes
/// through [`ScenarioBuilder::build_with_adversary`](uba_core::sim::ScenarioBuilder)
/// rather than a named [`AdversaryKind`], which is what lets the ablation pit the
/// scripted strategies against the adaptive attackers on identical workloads.
pub fn consensus_under<A>(
    correct: usize,
    byzantine: usize,
    seed: u64,
    adversary: A,
) -> (u64, u64, u64)
where
    A: Adversary<ConsensusMessage<u64>> + 'static,
{
    let inputs = binary_inputs(correct, 0.5, seed);
    let report = Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .seed(seed)
        .max_rounds(60 * (correct + byzantine) as u64 + 100)
        .build_with_adversary(ConsensusFactory::new(inputs), "ablation", adversary)
        .run()
        .expect("no engine error");
    assert!(
        report.completed(),
        "consensus terminates under every ablation adversary"
    );
    check_run_report(&report).assert_passed("consensus under ablation adversary");
    let section = report.consensus.as_ref().expect("consensus section");
    let decided = section.decisions.first().expect("checked above").value;
    (report.rounds, report.messages.correct, decided)
}

/// E13 — adversary-adaptivity ablation: termination round and message cost of
/// consensus under oblivious (scripted) versus rushing (traffic-aware) attackers.
/// Agreement and validity are asserted by the `uba-checker` oracle inside every cell.
pub fn e13_adaptive_attackers() -> Table {
    let mut table = Table::new(
        "E13: consensus under oblivious vs adaptive attackers (agreement checked)",
        &["f", "attacker", "adaptive", "rounds", "messages"],
    );
    for &f in &[2usize, 3] {
        let correct = 2 * f + 1;
        let seed = SEED + 31 * f as u64;
        let cells: Vec<(&str, bool, (u64, u64, u64))> = vec![
            (
                "silent",
                false,
                consensus_under(correct, f, seed, SilentAdversary),
            ),
            (
                "announce-then-silent",
                false,
                consensus_under(correct, f, seed, AnnounceThenSilent),
            ),
            (
                "partial-announce",
                false,
                consensus_under(correct, f, seed, PartialAnnounce),
            ),
            (
                "split-vote",
                false,
                consensus_under(correct, f, seed, SplitVote::new(0u64, 1u64)),
            ),
            (
                "minority-booster",
                true,
                consensus_under(correct, f, seed, MinorityBooster::new(0u64, 1u64)),
            ),
            (
                "equivocating-coordinator",
                true,
                consensus_under(correct, f, seed, EquivocatingCoordinator::new(0u64, 1u64)),
            ),
        ];
        for (name, adaptive, (rounds, messages, _)) in cells {
            table.push_row(vec![
                f.to_string(),
                name.into(),
                adaptive.to_string(),
                rounds.to_string(),
                messages.to_string(),
            ]);
        }
    }
    table
}

/// E14 — scaling of the parallel Monte-Carlo harness: wall-clock time of the same
/// 64-trial sweep on 1, 2, 4 and 8 workers. The aggregated results are asserted to be
/// identical across worker counts (determinism), so the only thing that changes is
/// the wall-clock time.
pub fn e14_parallel_scaling() -> Table {
    let mut table = Table::new(
        "E14: Monte-Carlo sweep wall-clock vs worker count (64 trials, f = 2)",
        &[
            "workers",
            "wall-clock (ms)",
            "speedup vs 1 worker",
            "agreement rate",
        ],
    );
    let mut baseline_ms = None;
    let mut baseline_outcome = None;
    for &workers in &[1usize, 2, 4, 8] {
        let sweep = ResilienceSweep {
            correct: 5,
            byzantine: 2,
            adversary: AdversaryKind::SplitVote,
            config: SweepConfig {
                trials: 64,
                base_seed: SEED,
                workers,
            },
        };
        let started = Instant::now();
        let outcome = sweep.run();
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        if let Some(previous) = &baseline_outcome {
            assert_eq!(
                previous, &outcome,
                "the sweep outcome must not depend on the worker count"
            );
        } else {
            baseline_outcome = Some(outcome.clone());
        }
        let speedup = match baseline_ms {
            None => {
                baseline_ms = Some(elapsed_ms);
                1.0
            }
            Some(base) => base / elapsed_ms,
        };
        table.push_row(vec![
            workers.to_string(),
            format!("{elapsed_ms:.1}"),
            format!("{speedup:.2}x"),
            outcome.agreement.display(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_reports_one_row_per_churn_period() {
        let table = e11_dynamic_approx_churn();
        assert_eq!(table.rows.len(), 4);
        // The churn-free row must end with an (essentially) collapsed spread.
        let final_spread: f64 = table.rows[0].last().unwrap().parse().unwrap();
        assert!(final_spread < 1.0);
    }

    #[test]
    fn e13_checks_and_reports_all_attackers() {
        let table = e13_adaptive_attackers();
        assert_eq!(table.rows.len(), 12, "6 attackers × 2 values of f");
        assert!(table
            .rows
            .iter()
            .all(|row| row[3].parse::<u64>().unwrap() > 0));
    }

    #[test]
    fn consensus_under_helper_reports_positive_costs() {
        let (rounds, messages, decided) = consensus_under(5, 1, 42, SilentAdversary);
        assert!(rounds >= 8, "at least initialisation plus one phase");
        assert!(messages > 0);
        assert!(decided == 0 || decided == 1);
    }
}
