//! Command-line runner for the E1–E14 experiment suite and the JSON baseline.
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- all
//! cargo run -p uba-bench --release --bin experiments -- e4 e7
//! cargo run -p uba-bench --release --bin experiments -- baseline [path]
//! ```
//!
//! `baseline` regenerates `BENCH_baseline.json`: the fixed scenario grid run through
//! the `Simulation` driver, serialised as verdict-annotated `RunReport`s plus an
//! aggregate summary (see `uba_bench::baseline`).

use uba_bench::{all_experiments, experiment_by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("baseline") {
        let path = std::path::PathBuf::from(
            args.get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_baseline.json"),
        );
        eprintln!("running the baseline grid…");
        let started = std::time::Instant::now();
        let json = uba_bench::write_baseline(&path).unwrap_or_else(|error| {
            eprintln!("cannot write {}: {error}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} ({} bytes) in {:.2?}",
            path.display(),
            json.len(),
            started.elapsed()
        );
        return;
    }

    #[allow(clippy::type_complexity)]
    let selected: Vec<(&'static str, fn() -> uba_bench::Table)> = if args.is_empty()
        || args.iter().any(|a| a == "all")
    {
        all_experiments()
    } else {
        args.iter()
            .map(|name| {
                let f = experiment_by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{name}'; expected e1..e14, 'all' or 'baseline'");
                    std::process::exit(2);
                });
                (Box::leak(name.clone().into_boxed_str()) as &'static str, f)
            })
            .collect()
    };

    for (name, run) in selected {
        eprintln!("running {name}…");
        let started = std::time::Instant::now();
        let table = run();
        println!("{table}");
        eprintln!("{name} finished in {:.2?}\n", started.elapsed());
    }
}
