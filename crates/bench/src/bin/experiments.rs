//! Command-line runner for the E1–E14 experiment suite and the JSON baseline.
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- all
//! cargo run -p uba-bench --release --bin experiments -- e4 e7
//! cargo run -p uba-bench --release --bin experiments -- baseline [path]
//! cargo run -p uba-bench --release --bin experiments -- scaling [--quick] [path]
//! cargo run -p uba-bench --release --bin experiments -- fuzz [--smoke] [--out path]
//! cargo run -p uba-bench --release --bin experiments -- fuzz --boundary [--smoke]
//! cargo run -p uba-bench --release --bin experiments -- fuzz --replay path
//! ```
//!
//! `baseline` regenerates `BENCH_baseline.json`: the fixed scenario grid run through
//! the `Simulation` driver, serialised as verdict-annotated `RunReport`s plus an
//! aggregate summary (see `uba_bench::baseline`).
//!
//! `scaling` regenerates `BENCH_scaling.json`: the wall-clock scaling sweep up to
//! `n = 256` with the per-phase timing split (see `uba_bench::scaling` and
//! `docs/ENGINE.md`). With `--quick` it runs the small-`n` prefix and two gates:
//! the deterministic baseline grid is compared against the recorded
//! `BENCH_baseline.json`, and the quick grid is re-run forced through the
//! parallel step path at two `parallel_node_threshold` values — **any count
//! drift exits non-zero**. This is the CI regression guard for engine rewrites.
//!
//! `fuzz --boundary` sweeps scenarios pinned *at* `n = 3f` and **fails if no
//! case violates a theorem property**: outside the resiliency bound a violation
//! is the expected outcome (it demonstrates the bound is tight).
//!
//! `fuzz` runs the deterministic property-fuzz grid (`uba_bench::fuzz`,
//! `docs/FUZZING.md`): every protocol/baseline family × attack plans × churn ×
//! derived seeds, checked against the `uba-checker` oracles. `--smoke` runs the
//! bounded CI grid. On failure the first shrunk counterexample is written to
//! `FUZZ_counterexample.json` (override with `--out`) and the exit code is 1;
//! `--replay <path>` re-executes a saved counterexample (either a bare `FuzzCase`
//! or a whole counterexample file).

use uba_bench::{all_experiments, experiment_by_name};

/// The value following `flag`, exiting with a usage error when the flag is
/// present but followed by nothing or by another flag (so `--out --smoke` cannot
/// silently write to a file named `--smoke`).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let pos = args.iter().position(|a| a == flag)?;
    match args.get(pos + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => Some(value),
        _ => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn replay_case(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
        eprintln!("cannot read {path}: {error}");
        std::process::exit(2);
    });
    // Accept either a serialized Counterexample (replay its shrunk case) or a
    // bare FuzzCase.
    let case = serde_json::from_str::<uba_bench::Counterexample>(&text)
        .map(|ce| ce.shrunk)
        .or_else(|_| serde_json::from_str::<uba_bench::FuzzCase>(&text))
        .unwrap_or_else(|error| {
            eprintln!("{path} is neither a counterexample nor a fuzz case: {error}");
            std::process::exit(2);
        });
    eprintln!("replaying {}…", case.describe());
    let report = uba_bench::run_case(&case);
    let failures = uba_bench::fuzz::case_failures(&case, &report);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("reports serialise")
    );
    if failures.is_empty() {
        eprintln!("replay passed every property ✓");
        std::process::exit(0);
    }
    eprintln!("replay still violates {} propert(ies):", failures.len());
    for failure in &failures {
        eprintln!("  {failure}");
    }
    std::process::exit(1);
}

fn run_boundary(smoke: bool, workers: usize) {
    let grid = uba_bench::boundary_grid(smoke);
    eprintln!(
        "boundary-fuzzing {} inadmissible (n = 3f) cases (smoke = {smoke}, {workers} workers)…",
        grid.len()
    );
    let outcome = uba_bench::fuzz_boundary(&grid, workers, 16);
    if outcome.counterexamples.is_empty() {
        // The *expected-failure* property: outside the resiliency bound some
        // case must demonstrably violate a theorem, or the bound is not shown
        // tight (and the attack library has lost its teeth).
        eprintln!(
            "no n = 3f case violated any theorem property — the expected failure did not \
             materialise"
        );
        std::process::exit(1);
    }
    eprintln!(
        "{} demonstration(s) that n > 3f is tight; smallest after shrinking:",
        outcome.counterexamples.len()
    );
    let smallest = outcome
        .counterexamples
        .iter()
        .min_by_key(|ce| ce.shrunk.spec.n())
        .expect("non-empty");
    eprintln!(
        "  {} ({} shrink steps)",
        smallest.shrunk.describe(),
        smallest.shrink_steps
    );
    for failure in &smallest.failures {
        eprintln!("    {failure}");
    }
}

fn run_fuzz(args: &[String]) {
    if let Some(path) = flag_value(args, "--replay") {
        replay_case(path);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(args, "--out").unwrap_or("FUZZ_counterexample.json");
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    if args.iter().any(|a| a == "--boundary") {
        run_boundary(smoke, workers);
        return;
    }
    let grid = uba_bench::default_grid(smoke);
    eprintln!(
        "fuzzing {} cases (smoke = {smoke}, {workers} workers)…",
        grid.len()
    );
    let started = std::time::Instant::now();
    let outcome = uba_bench::fuzz_grid(&grid, workers, 3);
    println!("{}", uba_bench::fuzz::fuzz_table(&grid, &outcome));
    eprintln!("fuzz finished in {:.2?}", started.elapsed());
    if outcome.passed() {
        eprintln!("all {} cases passed every property ✓", outcome.cases);
        return;
    }
    let first = &outcome.counterexamples[0];
    eprintln!(
        "found {} counterexample(s); first: {} (shrunk from {} in {} steps)",
        outcome.counterexamples.len(),
        first.shrunk.describe(),
        first.original.describe(),
        first.shrink_steps,
    );
    for failure in &first.failures {
        eprintln!("  {failure}");
    }
    let json = serde_json::to_string_pretty(first).expect("counterexamples serialise");
    if let Err(error) = std::fs::write(out, &json) {
        eprintln!("cannot write {out}: {error}");
    } else {
        eprintln!("shrunk reproducer written to {out} (replay with fuzz --replay {out})");
    }
    std::process::exit(1);
}

fn run_scaling(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    // A quick run writes to its own default file: the checked-in
    // BENCH_scaling.json holds the full grid, and a prefix-only run must not
    // silently clobber the recorded trajectory.
    let default_path = if quick {
        "scaling-quick.json"
    } else {
        "BENCH_scaling.json"
    };
    let path = std::path::PathBuf::from(
        args.iter()
            .find(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or(default_path),
    );
    if quick {
        eprintln!("checking the engine against BENCH_baseline.json…");
        let recorded =
            uba_bench::scaling::load_baseline(std::path::Path::new("BENCH_baseline.json"))
                .unwrap_or_else(|error| {
                    eprintln!("cannot load BENCH_baseline.json: {error}");
                    std::process::exit(1);
                });
        let drift = uba_bench::scaling::baseline_drift(&recorded);
        if !drift.is_empty() {
            eprintln!("engine behaviour drifted from BENCH_baseline.json:");
            for line in &drift {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("baseline counts unchanged ✓");
        // Second gate: the quick grid forced through the parallel step path at
        // two thresholds must reproduce the serial counts exactly — serial ≡
        // parallel is an engine invariant, not a hope.
        eprintln!("checking count drift across parallel_node_threshold values 1 and 64…");
        let threshold_drift = uba_bench::scaling::threshold_drift(true, &[1, 64]);
        if !threshold_drift.is_empty() {
            eprintln!("parallel stepping drifted from the serial counts:");
            for line in &threshold_drift {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("threshold counts identical ✓");
    }
    eprintln!("running the scaling grid (quick = {quick})…");
    let started = std::time::Instant::now();
    let json = uba_bench::write_scaling(&path, quick).unwrap_or_else(|error| {
        eprintln!("cannot write {}: {error}", path.display());
        std::process::exit(1);
    });
    eprintln!(
        "wrote {} ({} bytes) in {:.2?}",
        path.display(),
        json.len(),
        started.elapsed()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("scaling") {
        run_scaling(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("baseline") {
        let path = std::path::PathBuf::from(
            args.get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_baseline.json"),
        );
        eprintln!("running the baseline grid…");
        let started = std::time::Instant::now();
        let json = uba_bench::write_baseline(&path).unwrap_or_else(|error| {
            eprintln!("cannot write {}: {error}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} ({} bytes) in {:.2?}",
            path.display(),
            json.len(),
            started.elapsed()
        );
        return;
    }

    #[allow(clippy::type_complexity)]
    let selected: Vec<(&'static str, fn() -> uba_bench::Table)> = if args.is_empty()
        || args.iter().any(|a| a == "all")
    {
        all_experiments()
    } else {
        args.iter()
            .map(|name| {
                let f = experiment_by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment '{name}'; expected e1..e14, 'all', 'baseline', 'scaling' or 'fuzz'"
                    );
                    std::process::exit(2);
                });
                (Box::leak(name.clone().into_boxed_str()) as &'static str, f)
            })
            .collect()
    };

    for (name, run) in selected {
        eprintln!("running {name}…");
        let started = std::time::Instant::now();
        let table = run();
        println!("{table}");
        eprintln!("{name} finished in {:.2?}\n", started.elapsed());
    }
}
