//! Command-line runner for the E1–E14 experiment suite and the JSON baseline.
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- all
//! cargo run -p uba-bench --release --bin experiments -- e4 e7
//! cargo run -p uba-bench --release --bin experiments -- baseline [path]
//! cargo run -p uba-bench --release --bin experiments -- scaling [--quick] [path]
//! cargo run -p uba-bench --release --bin experiments -- fuzz [--smoke] [--out path]
//! cargo run -p uba-bench --release --bin experiments -- fuzz --boundary [--smoke]
//! cargo run -p uba-bench --release --bin experiments -- fuzz --replay path
//! cargo run -p uba-bench --release --bin experiments -- soak [--smoke] [--engine sync|event] [path]
//! cargo run -p uba-bench --release --bin experiments -- stream [--smoke] [--window-sweep] [path]
//! ```
//!
//! `baseline` regenerates `BENCH_baseline.json`: the fixed scenario grid run through
//! the `Simulation` driver, serialised as verdict-annotated `RunReport`s plus an
//! aggregate summary (see `uba_bench::baseline`).
//!
//! `scaling` regenerates `BENCH_scaling.json`: the wall-clock scaling sweep up to
//! `n = 256` with the per-phase timing split (see `uba_bench::scaling` and
//! `docs/ENGINE.md`). With `--quick` it runs the small-`n` prefix and two gates:
//! the deterministic baseline grid is compared against the recorded
//! `BENCH_baseline.json`, and the quick grid is re-run forced through the
//! parallel step path at two `parallel_node_threshold` values — **any count
//! drift exits non-zero**. This is the CI regression guard for engine rewrites.
//!
//! `fuzz --boundary` sweeps scenarios pinned *at* `n = 3f` and **fails if no
//! case violates a theorem property**: outside the resiliency bound a violation
//! is the expected outcome (it demonstrates the bound is tight).
//!
//! `soak` runs the long-horizon crash/restart soak (`uba_bench::soak`,
//! `docs/RECOVERY.md`): thousands of rounds at `n = 64` (hundreds with
//! `--smoke`) under continuous crash/restart churn, on both engines,
//! writing per-round latency percentiles and the live-allocation memory proxy
//! to `BENCH_soak.json` (`BENCH_soak_smoke.json` for `--smoke`; a smoke run
//! refuses to overwrite a full artifact). Fresh percentiles are compared
//! against the committed file with a generous margin — drift is reported,
//! never hard-failed, since wall-clock numbers are machine-dependent. The
//! exit code is 1 when any row shows monotone memory growth, has too few
//! samples for the leak gate, or fails the recovery oracles.
//!
//! `stream` runs the pipelined multi-shot agreement stream (`uba_bench::stream`,
//! `docs/STREAMING.md`): an open-loop Zipf-keyed request generator batched into
//! overlapping consensus instances and batched total-order events, on both
//! engines, recording decisions/sec, msgs/sec, batch-size histograms and
//! request-latency percentiles to `BENCH_stream.json`. With `--smoke` only the
//! smoke rows are re-run and their deterministic columns are gated against the
//! committed artifact (count drift exits 1, the CI regression guard); the
//! committed full rows are carried over unchanged. Wall-clock rates are
//! recorded, never gated. The exit code is 1 when any row fails its oracles.
//! Every non-`--window-sweep` run also regenerates the active-window sweep
//! (per-round mux cost vs window size, `docs/STREAMING.md`); `--window-sweep`
//! regenerates *only* that section, carrying the committed rows over. The
//! sweep's slope gate — doubling the horizon at a fixed window must not grow
//! per-round cost beyond 1.1× — is deterministic and hard-fails in any mode.
//!
//! `fuzz` runs the deterministic property-fuzz grid (`uba_bench::fuzz`,
//! `docs/FUZZING.md`): every protocol/baseline family × attack plans × churn ×
//! derived seeds, checked against the `uba-checker` oracles. `--smoke` runs the
//! bounded CI grid. On failure the first shrunk counterexample is written to
//! `FUZZ_counterexample.json` (override with `--out`) and the exit code is 1;
//! `--replay <path>` re-executes a saved counterexample (either a bare `FuzzCase`
//! or a whole counterexample file).

use uba_bench::{all_experiments, experiment_by_name};

/// The value following `flag`, exiting with a usage error when the flag is
/// present but followed by nothing or by another flag (so `--out --smoke` cannot
/// silently write to a file named `--smoke`).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let pos = args.iter().position(|a| a == flag)?;
    match args.get(pos + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => Some(value),
        _ => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn replay_case(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
        eprintln!("cannot read {path}: {error}");
        std::process::exit(2);
    });
    // Accept either a serialized Counterexample (replay its shrunk case) or a
    // bare FuzzCase.
    let case = serde_json::from_str::<uba_bench::Counterexample>(&text)
        .map(|ce| ce.shrunk)
        .or_else(|_| serde_json::from_str::<uba_bench::FuzzCase>(&text))
        .unwrap_or_else(|error| {
            eprintln!("{path} is neither a counterexample nor a fuzz case: {error}");
            std::process::exit(2);
        });
    eprintln!("replaying {}…", case.describe());
    let report = uba_bench::run_case(&case);
    // Judge the replay by the oracle that found it: theorem properties inside
    // the resiliency bound, expected-failure boundary properties outside it.
    let failures = uba_bench::replay_failures(&case, &report);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("reports serialise")
    );
    if failures.is_empty() {
        // A reproducer that no longer reproduces is an error, not a success: it
        // means the recorded counterexample is stale (the bug moved or the file
        // rotted) and whatever relied on it is testing nothing.
        eprintln!("stale counterexample: the replayed case no longer fails any property");
        std::process::exit(1);
    }
    eprintln!(
        "counterexample reproduced — {} propert(ies) still violated:",
        failures.len()
    );
    for failure in &failures {
        eprintln!("  {failure}");
    }
    std::process::exit(0);
}

/// Maps the `--ids` flag onto the boundary grid's identifier-layout axis.
fn boundary_ids(args: &[String]) -> Vec<uba_simnet::IdSpace> {
    match flag_value(args, "--ids") {
        None => uba_bench::boundary_id_spaces(),
        Some("dense") => vec![uba_simnet::IdSpace::Consecutive],
        Some("sparse") => vec![uba_simnet::IdSpace::default()],
        Some("adversary") => vec![uba_simnet::IdSpace::AdversaryLow { stride: 97 }],
        Some(other) => {
            eprintln!("--ids expects dense, sparse or adversary, got '{other}'");
            std::process::exit(2);
        }
    }
}

fn run_boundary(smoke: bool, workers: usize, id_spaces: Vec<uba_simnet::IdSpace>, out: &str) {
    eprintln!(
        "boundary-fuzzing all {} families at n = 3f (smoke = {smoke}, {workers} workers, \
         {} identifier layout(s))…",
        uba_bench::ProtocolId::ALL.len(),
        id_spaces.len()
    );
    let matrix = uba_bench::boundary_matrix(smoke, workers, id_spaces);
    let mut table = uba_bench::Table::new(
        "boundary matrix: n = 3f theorem status per family".to_string(),
        &["family", "cases", "status", "shrunk demonstration"],
    );
    let mut unshaped = Vec::new();
    let mut smallest: Option<&uba_bench::Counterexample> = None;
    for row in &matrix {
        let (status, detail) = match (&row.counterexample, row.protocol.boundary_immunity()) {
            (Some(ce), _) => {
                if smallest.is_none_or(|s| ce.shrunk.spec.n() < s.shrunk.spec.n()) {
                    smallest = Some(ce);
                }
                (
                    "violated".to_string(),
                    format!(
                        "{} ({} shrink steps): {}",
                        ce.shrunk.describe(),
                        ce.shrink_steps,
                        ce.failures.first().map(String::as_str).unwrap_or("?")
                    ),
                )
            }
            (None, Some(reason)) => ("immune (documented)".to_string(), reason.to_string()),
            (None, None) => {
                unshaped.push(row.protocol);
                (
                    "NO RESULT".to_string(),
                    "no violation, no documented immunity".to_string(),
                )
            }
        };
        table.push_row(vec![
            row.protocol.name().to_string(),
            row.cases.to_string(),
            status,
            detail,
        ]);
    }
    println!("{table}");
    if let Some(ce) = smallest {
        let json = serde_json::to_string_pretty(ce).expect("counterexamples serialise");
        if let Err(error) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {error}");
        } else {
            eprintln!("smallest shrunk demonstration written to {out}");
        }
    }
    if !unshaped.is_empty() {
        // The expected-failure property, per family: every family must either
        // demonstrate the bound's tightness or document why its oracle cannot
        // fail there. A family with neither means the attack library cannot
        // speak its payload language sharply enough.
        eprintln!(
            "families with neither an n = 3f violation nor a documented immunity: {}",
            unshaped
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }
}

fn run_fuzz(args: &[String]) {
    if let Some(path) = flag_value(args, "--replay") {
        replay_case(path);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(args, "--out").unwrap_or("FUZZ_counterexample.json");
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    if args.iter().any(|a| a == "--boundary") {
        let out = flag_value(args, "--out").unwrap_or("BOUNDARY_counterexample.json");
        run_boundary(smoke, workers, boundary_ids(args), out);
        return;
    }
    if args.iter().any(|a| a == "--search") {
        let out = flag_value(args, "--out").unwrap_or("SEARCH_counterexample.json");
        run_search(smoke, workers, out);
        return;
    }
    let grid = uba_bench::default_grid(smoke);
    eprintln!(
        "fuzzing {} cases (smoke = {smoke}, {workers} workers)…",
        grid.len()
    );
    let started = std::time::Instant::now();
    let outcome = uba_bench::fuzz_grid(&grid, workers, 3);
    println!("{}", uba_bench::fuzz::fuzz_table(&grid, &outcome));
    eprintln!("fuzz finished in {:.2?}", started.elapsed());
    if outcome.passed() {
        eprintln!("all {} cases passed every property ✓", outcome.cases);
        return;
    }
    let first = &outcome.counterexamples[0];
    eprintln!(
        "found {} counterexample(s); first: {} (shrunk from {} in {} steps)",
        outcome.counterexamples.len(),
        first.shrunk.describe(),
        first.original.describe(),
        first.shrink_steps,
    );
    for failure in &first.failures {
        eprintln!("  {failure}");
    }
    let json = serde_json::to_string_pretty(first).expect("counterexamples serialise");
    if let Err(error) = std::fs::write(out, &json) {
        eprintln!("cannot write {out}: {error}");
    } else {
        eprintln!("shrunk reproducer written to {out} (replay with fuzz --replay {out})");
    }
    std::process::exit(1);
}

/// Margin-guided search (`fuzz --search`): hill-climbs over mutated fuzz cases
/// using the checker margins as fitness. Margins are *recorded* in the
/// trajectory summary, never gated on — the only gates are "found a real
/// (admissible) violation" and "found nothing at all" (a search that cannot
/// even reach the documented boundary demonstrations has lost its teeth).
fn run_search(smoke: bool, workers: usize, out: &str) {
    let grid = uba_bench::default_grid(smoke);
    let config = if smoke {
        uba_bench::SearchConfig::smoke(workers)
    } else {
        uba_bench::SearchConfig::full(workers)
    };
    eprintln!(
        "searching from a {}-case seed grid ({} restarts × {} steps, {workers} workers)…",
        grid.len(),
        config.restarts,
        config.steps,
    );
    let started = std::time::Instant::now();
    let outcome = uba_bench::search_grid(&grid, &config);
    let accepted = outcome.trajectory.iter().filter(|s| s.accepted).count();
    let tightest = outcome
        .trajectory
        .iter()
        .map(|s| s.min_margin)
        .min()
        .unwrap_or(u64::MAX);
    eprintln!(
        "search finished in {:.2?}: {} evaluations, {} accepted moves, tightest margin seen {}",
        started.elapsed(),
        outcome.evaluations,
        accepted,
        tightest,
    );
    if outcome.counterexamples.is_empty() {
        eprintln!("search found no violation within budget — the climb has lost its teeth");
        std::process::exit(1);
    }
    let mut real_bug = false;
    for counterexample in &outcome.counterexamples {
        let kind = if counterexample.shrunk.spec.admissible() {
            real_bug = true;
            "ADMISSIBLE VIOLATION"
        } else {
            "boundary demonstration"
        };
        eprintln!(
            "  [{kind}] {} (shrunk from {} in {} steps)",
            counterexample.shrunk.describe(),
            counterexample.original.describe(),
            counterexample.shrink_steps,
        );
        for failure in &counterexample.failures {
            eprintln!("    {failure}");
        }
    }
    let first = &outcome.counterexamples[0];
    let json = serde_json::to_string_pretty(first).expect("counterexamples serialise");
    if let Err(error) = std::fs::write(out, &json) {
        eprintln!("cannot write {out}: {error}");
    } else {
        eprintln!("shrunk reproducer written to {out} (replay with fuzz --replay {out})");
    }
    if real_bug {
        std::process::exit(1);
    }
    eprintln!(
        "all {} counterexample(s) are expected boundary demonstrations ✓",
        outcome.counterexamples.len()
    );
}

fn run_scaling(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    // `--engine event` forces the whole grid through the discrete-event
    // scheduler (zero-jitter timing) and writes the overhead rows to its own
    // file — counts are identical by construction, the wall clock is the point.
    match flag_value(args, "--engine") {
        None | Some("sync") => {}
        Some("event") => {
            let engine_value_pos = args.iter().position(|a| a == "--engine").map(|p| p + 1);
            let path = std::path::PathBuf::from(
                args.iter()
                    .enumerate()
                    .find(|(i, a)| !a.starts_with("--") && Some(*i) != engine_value_pos)
                    .map(|(_, a)| a.as_str())
                    .unwrap_or("scaling-event.json"),
            );
            eprintln!("running the scaling grid through the event engine (quick = {quick})…");
            let started = std::time::Instant::now();
            let rows = uba_bench::scaling::scaling_rows_with_engine(
                quick,
                uba_simnet::EngineKind::event(),
            );
            let file = uba_bench::ScalingFile {
                seed: uba_bench::scaling::SEED,
                quick,
                rows,
                speedups: Vec::new(),
            };
            let json = serde_json::to_string_pretty(&file).expect("scaling files serialise");
            if let Err(error) = std::fs::write(&path, &json) {
                eprintln!("cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!(
                "wrote {} ({} bytes) in {:.2?}",
                path.display(),
                json.len(),
                started.elapsed()
            );
            return;
        }
        Some(other) => {
            eprintln!("--engine expects sync or event, got '{other}'");
            std::process::exit(2);
        }
    }
    // A quick run writes to its own default file: the checked-in
    // BENCH_scaling.json holds the full grid, and a prefix-only run must not
    // silently clobber the recorded trajectory.
    let default_path = if quick {
        "scaling-quick.json"
    } else {
        "BENCH_scaling.json"
    };
    let path = std::path::PathBuf::from(
        args.iter()
            .find(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or(default_path),
    );
    if quick {
        eprintln!("checking the engine against BENCH_baseline.json…");
        let recorded =
            uba_bench::scaling::load_baseline(std::path::Path::new("BENCH_baseline.json"))
                .unwrap_or_else(|error| {
                    eprintln!("cannot load BENCH_baseline.json: {error}");
                    std::process::exit(1);
                });
        let drift = uba_bench::scaling::baseline_drift(&recorded);
        if !drift.is_empty() {
            eprintln!("engine behaviour drifted from BENCH_baseline.json:");
            for line in &drift {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("baseline counts unchanged ✓");
        // Second gate: the quick grid forced through the parallel step path at
        // two thresholds must reproduce the serial counts exactly — serial ≡
        // parallel is an engine invariant, not a hope.
        eprintln!("checking count drift across parallel_node_threshold values 1 and 64…");
        let threshold_drift = uba_bench::scaling::threshold_drift(true, &[1, 64]);
        if !threshold_drift.is_empty() {
            eprintln!("parallel stepping drifted from the serial counts:");
            for line in &threshold_drift {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("threshold counts identical ✓");
    }
    eprintln!("running the scaling grid (quick = {quick})…");
    let started = std::time::Instant::now();
    let json = uba_bench::write_scaling(&path, quick).unwrap_or_else(|error| {
        eprintln!("cannot write {}: {error}", path.display());
        std::process::exit(1);
    });
    eprintln!(
        "wrote {} ({} bytes) in {:.2?}",
        path.display(),
        json.len(),
        started.elapsed()
    );
}

fn run_soak(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let engines: Vec<Option<uba_simnet::EngineKind>> = match flag_value(args, "--engine") {
        None => vec![None, Some(uba_simnet::EngineKind::event())],
        Some("sync") => vec![None],
        Some("event") => vec![Some(uba_simnet::EngineKind::event())],
        Some(other) => {
            eprintln!("--engine expects sync or event, got '{other}'");
            std::process::exit(2);
        }
    };
    let engine_value_pos = args.iter().position(|a| a == "--engine").map(|p| p + 1);
    // Smoke and full runs default to *different* files: the checked-in
    // BENCH_soak.json is the full 2000-round artifact, and a smoke run must
    // never silently replace it with the short shape (which is exactly what
    // happened when both presets shared one default path).
    let default_path = if smoke {
        "BENCH_soak_smoke.json"
    } else {
        "BENCH_soak.json"
    };
    let path = std::path::PathBuf::from(
        args.iter()
            .enumerate()
            .find(|(i, a)| !a.starts_with("--") && Some(*i) != engine_value_pos)
            .map(|(_, a)| a.as_str())
            .unwrap_or(default_path),
    );
    // The committed file at the target path, when there is one: the refusal
    // check and the latency-regression gate both read it, and both must do so
    // before the fresh run overwrites it.
    let committed: Option<uba_bench::SoakFile> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    if smoke {
        if let Some(existing) = &committed {
            if !existing.smoke {
                eprintln!(
                    "refusing to overwrite {} with a --smoke run: it holds a full \
                     (non-smoke) artifact; pass an explicit path to override",
                    path.display()
                );
                std::process::exit(2);
            }
        }
    }
    let config = if smoke {
        uba_bench::SoakConfig::smoke()
    } else {
        uba_bench::SoakConfig::full()
    };
    eprintln!(
        "soaking n = {} for {} rounds under rotating clean/faulty crash/restart churn \
         every {} rounds, traffic GC on (smoke = {smoke}, {} engine(s))…",
        config.nodes,
        config.rounds,
        config.crash_period,
        engines.len()
    );
    let started = std::time::Instant::now();
    let file = uba_bench::soak::soak_file_with(smoke, &config, &engines);
    println!("{}", uba_bench::soak_table(&file));
    // Wall-clock latency regression gate: recorded, never hard-failed (the
    // same policy scaling-smoke applies to wall-clock columns — machine noise
    // must not break CI; the drift lines are there for humans to read).
    match &committed {
        Some(committed) => {
            let drift = uba_bench::soak::latency_drift(&file, committed, 3.0, 2_000.0);
            if drift.is_empty() {
                eprintln!(
                    "step-latency percentiles within margin of the committed {} ✓",
                    path.display()
                );
            } else {
                for line in &drift {
                    eprintln!("WARNING {line}");
                }
            }
        }
        None => eprintln!(
            "no committed {} to compare step latencies against",
            path.display()
        ),
    }
    let json = serde_json::to_string_pretty(&file).expect("soak files serialise");
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {error}", path.display());
        std::process::exit(1);
    }
    eprintln!(
        "wrote {} ({} bytes) in {:.2?}",
        path.display(),
        json.len(),
        started.elapsed()
    );
    // The slope gate's numbers are worth a line even when green: CI uploads
    // this log, so the trend is visible without opening the artifact.
    for row in &file.rows {
        eprintln!(
            "slope gate: {} n={} median step latency {:.1}µs (mid third) → {:.1}µs \
             (last third), slope {:.3} (bound {} × mid + {}µs)",
            row.engine,
            row.nodes,
            row.lat_mid_third_us,
            row.lat_last_third_us,
            row.lat_slope,
            uba_bench::soak::LATENCY_SLOPE_MARGIN,
            uba_bench::soak::LATENCY_SLOPE_FLOOR_US,
        );
    }
    if !file.passed() {
        for row in file.rows.iter().filter(|r| !r.passed()) {
            eprintln!(
                "soak FAILED on the {} engine: leak = {} (growth {:.3}), latency drift = {} \
                 (slope {:.3}), insufficient samples = {}, oracles passed = {}",
                row.engine,
                row.leak,
                row.growth,
                row.lat_drift,
                row.lat_slope,
                row.insufficient_samples,
                row.oracles_passed
            );
        }
        std::process::exit(1);
    }
    eprintln!("memory flat, step latency flat and recovery oracles clean on every engine ✓");
}

fn run_stream(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let sweep_only = args.iter().any(|a| a == "--window-sweep");
    let path = std::path::PathBuf::from(
        args.iter()
            .find(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("BENCH_stream.json"),
    );
    let committed = uba_bench::stream::read_stream(&path);
    // A smoke run is the CI regression gate: it needs a committed, well-formed
    // artifact to compare against — a missing or unparseable BENCH_stream.json
    // is itself a failure, not a free pass. A sweep-only run splices into the
    // committed rows, so it needs them too.
    if (smoke || sweep_only) && committed.is_none() {
        eprintln!(
            "stream {} needs a committed, well-formed {} to gate against \
             (regenerate it with `experiments -- stream`)",
            if smoke { "--smoke" } else { "--window-sweep" },
            path.display()
        );
        std::process::exit(1);
    }
    let started = std::time::Instant::now();
    let fresh = if sweep_only {
        // Only the active-window sweep; the committed measurement rows ride
        // along untouched.
        eprintln!("sweeping per-round mux cost across active-window sizes…");
        let mut file = committed.clone().expect("checked above");
        file.window_sweep = uba_bench::stream::window_sweep_rows();
        file
    } else {
        eprintln!(
            "streaming pipelined agreement instances through both engines (smoke = {smoke})…"
        );
        let file = uba_bench::stream_file(smoke);
        println!("{}", uba_bench::stream_table(&file));
        file
    };
    println!(
        "{}",
        uba_bench::stream::window_sweep_table(&fresh.window_sweep)
    );
    // The active-window property is deterministic (pure step counters), so it
    // hard-gates in every mode: per-round cost must not grow with the horizon.
    let slope = uba_bench::stream::window_sweep_slope(&fresh.window_sweep);
    if !slope.is_empty() {
        eprintln!("active-window sweep slope gate FAILED:");
        for line in &slope {
            eprintln!("  {line}");
        }
        std::process::exit(1);
    }
    eprintln!("per-round cost flat in the horizon at every window size ✓");
    // A smoke run regenerates only the smoke rows; the committed full rows (if
    // any) are carried over so the artifact never loses its full shape to a CI
    // run — the failure mode the soak artifact had.
    let file = match (&committed, smoke && !sweep_only) {
        (Some(committed), true) => {
            let drift = uba_bench::stream_drift(&fresh, committed);
            if !drift.is_empty() {
                eprintln!(
                    "stream counts drifted from the committed {}:",
                    path.display()
                );
                for line in &drift {
                    eprintln!("  {line}");
                }
                std::process::exit(1);
            }
            eprintln!("deterministic stream counts unchanged ✓");
            let mut merged = fresh.clone();
            merged.rows.extend(
                committed
                    .rows
                    .iter()
                    .filter(|row| row.preset != "smoke")
                    .cloned(),
            );
            merged
        }
        _ => fresh,
    };
    let json = uba_bench::write_stream(&path, &file).unwrap_or_else(|error| {
        eprintln!("cannot write {}: {error}", path.display());
        std::process::exit(1);
    });
    eprintln!(
        "wrote {} ({} bytes) in {:.2?}",
        path.display(),
        json.len(),
        started.elapsed()
    );
    if file.rows.iter().any(|row| !row.oracles_passed) {
        for row in file.rows.iter().filter(|r| !r.oracles_passed) {
            eprintln!(
                "stream FAILED its oracles: {} {} on the {} engine",
                row.preset, row.family, row.engine
            );
        }
        std::process::exit(1);
    }
    eprintln!("stream oracles clean on every row ✓");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("stream") {
        run_stream(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("soak") {
        run_soak(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("scaling") {
        run_scaling(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("baseline") {
        let path = std::path::PathBuf::from(
            args.get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_baseline.json"),
        );
        eprintln!("running the baseline grid…");
        let started = std::time::Instant::now();
        let json = uba_bench::write_baseline(&path).unwrap_or_else(|error| {
            eprintln!("cannot write {}: {error}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} ({} bytes) in {:.2?}",
            path.display(),
            json.len(),
            started.elapsed()
        );
        return;
    }

    #[allow(clippy::type_complexity)]
    let selected: Vec<(&'static str, fn() -> uba_bench::Table)> = if args.is_empty()
        || args.iter().any(|a| a == "all")
    {
        all_experiments()
    } else {
        args.iter()
            .map(|name| {
                let f = experiment_by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment '{name}'; expected e1..e14, 'all', 'baseline', 'scaling', 'soak' or 'fuzz'"
                    );
                    std::process::exit(2);
                });
                (Box::leak(name.clone().into_boxed_str()) as &'static str, f)
            })
            .collect()
    };

    for (name, run) in selected {
        eprintln!("running {name}…");
        let started = std::time::Instant::now();
        let table = run();
        println!("{table}");
        eprintln!("{name} finished in {:.2?}\n", started.elapsed());
    }
}
