//! Command-line runner for the E1–E10 experiment suite.
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- all
//! cargo run -p uba-bench --release --bin experiments -- e4 e7
//! ```

use uba_bench::{all_experiments, experiment_by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<(&'static str, fn() -> uba_bench::Table)> =
        if args.is_empty() || args.iter().any(|a| a == "all") {
            all_experiments()
        } else {
            args.iter()
                .map(|name| {
                    let f = experiment_by_name(name).unwrap_or_else(|| {
                        eprintln!("unknown experiment '{name}'; expected e1..e10 or 'all'");
                        std::process::exit(2);
                    });
                    (Box::leak(name.clone().into_boxed_str()) as &'static str, f)
                })
                .collect()
        };

    for (name, run) in selected {
        eprintln!("running {name}…");
        let started = std::time::Instant::now();
        let table = run();
        println!("{table}");
        eprintln!("{name} finished in {:.2?}\n", started.elapsed());
    }
}
