//! Command-line runner for the E1–E14 experiment suite and the JSON baseline.
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- all
//! cargo run -p uba-bench --release --bin experiments -- e4 e7
//! cargo run -p uba-bench --release --bin experiments -- baseline [path]
//! cargo run -p uba-bench --release --bin experiments -- scaling [--quick] [path]
//! ```
//!
//! `baseline` regenerates `BENCH_baseline.json`: the fixed scenario grid run through
//! the `Simulation` driver, serialised as verdict-annotated `RunReport`s plus an
//! aggregate summary (see `uba_bench::baseline`).
//!
//! `scaling` regenerates `BENCH_scaling.json`: the wall-clock scaling sweep up to
//! `n = 128` (see `uba_bench::scaling`). With `--quick` it runs the small-`n`
//! prefix, re-runs the deterministic baseline grid, and **exits non-zero if the
//! engine's rounds, message or delivery counts drifted** from the recorded
//! `BENCH_baseline.json` — the CI regression guard for engine rewrites.

use uba_bench::{all_experiments, experiment_by_name};

fn run_scaling(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    // A quick run writes to its own default file: the checked-in
    // BENCH_scaling.json holds the full grid, and a prefix-only run must not
    // silently clobber the recorded trajectory.
    let default_path = if quick {
        "scaling-quick.json"
    } else {
        "BENCH_scaling.json"
    };
    let path = std::path::PathBuf::from(
        args.iter()
            .find(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or(default_path),
    );
    if quick {
        eprintln!("checking the engine against BENCH_baseline.json…");
        let recorded =
            uba_bench::scaling::load_baseline(std::path::Path::new("BENCH_baseline.json"))
                .unwrap_or_else(|error| {
                    eprintln!("cannot load BENCH_baseline.json: {error}");
                    std::process::exit(1);
                });
        let drift = uba_bench::scaling::baseline_drift(&recorded);
        if !drift.is_empty() {
            eprintln!("engine behaviour drifted from BENCH_baseline.json:");
            for line in &drift {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("baseline counts unchanged ✓");
    }
    eprintln!("running the scaling grid (quick = {quick})…");
    let started = std::time::Instant::now();
    let json = uba_bench::write_scaling(&path, quick).unwrap_or_else(|error| {
        eprintln!("cannot write {}: {error}", path.display());
        std::process::exit(1);
    });
    eprintln!(
        "wrote {} ({} bytes) in {:.2?}",
        path.display(),
        json.len(),
        started.elapsed()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("scaling") {
        run_scaling(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("baseline") {
        let path = std::path::PathBuf::from(
            args.get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_baseline.json"),
        );
        eprintln!("running the baseline grid…");
        let started = std::time::Instant::now();
        let json = uba_bench::write_baseline(&path).unwrap_or_else(|error| {
            eprintln!("cannot write {}: {error}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} ({} bytes) in {:.2?}",
            path.display(),
            json.len(),
            started.elapsed()
        );
        return;
    }

    #[allow(clippy::type_complexity)]
    let selected: Vec<(&'static str, fn() -> uba_bench::Table)> = if args.is_empty()
        || args.iter().any(|a| a == "all")
    {
        all_experiments()
    } else {
        args.iter()
            .map(|name| {
                let f = experiment_by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment '{name}'; expected e1..e14, 'all', 'baseline' or 'scaling'"
                    );
                    std::process::exit(2);
                });
                (Box::leak(name.clone().into_boxed_str()) as &'static str, f)
            })
            .collect()
    };

    for (name, run) in selected {
        eprintln!("running {name}…");
        let started = std::time::Instant::now();
        let table = run();
        println!("{table}");
        eprintln!("{name} finished in {:.2?}\n", started.elapsed());
    }
}
