//! Property-based fuzzing over the scenario-sweep DSL, with a shrinking
//! counterexample minimiser.
//!
//! The pipeline is: a [`ScenarioGrid`] enumerates protocols × `(n, f)` sizes ×
//! [`AttackPlan`]s × churn schedules × crash plans × derived seeds
//! (`uba_simnet::sweep`); each
//! case runs through the `Simulation` builder via [`run_case`] with deterministic,
//! seed-derived inputs; the `uba-checker` oracles plus a few structural liveness
//! checks act as the *properties* ([`case_failures`]); and any failing case is
//! greedily minimised by [`shrink_case`] — fewer correct nodes, fewer Byzantine
//! identities, fewer plan steps, fewer churn events — into a small serialized
//! [`FuzzCase`] reproducer that replays with [`run_case`] (or
//! `experiments -- fuzz --replay <file>`).
//!
//! Trials fan out over the [`run_trials`] worker pool; because the grid's case
//! enumeration and per-case seeds are pure functions of the grid definition, the
//! fuzz outcome is byte-for-byte identical regardless of the worker count.
//!
//! Properties are only asserted on *admissible* scenarios
//! ([`ScenarioSpec::admissible`]: `n > 3f` at the start and across the churn
//! horizon) — outside the bound the theorems make no promise and a violated
//! property is not a bug.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_checker::attach_verdicts;
use uba_core::sim::{
    ApproxFactory, BroadcastFactory, ConsensusFactory, ParallelConsensusFactory, RotorFactory,
    TotalOrderFactory, TotalOrderPlan,
};
use uba_simnet::attack::{
    AdaptiveStrategy, AttackBehavior, AttackPlan, AttackStep, SemanticStrategy,
};
use uba_simnet::sim::{AdversaryKind, RunReport, ScenarioBuilder, ScenarioSpec};
use uba_simnet::sweep::{CrashPlan, ScenarioGrid, SweepCase};
use uba_simnet::{
    ChurnEvent, ChurnSchedule, EngineKind, IdSpace, NodeId, RestartPolicy, TimingSpec,
};

use crate::montecarlo::{run_trials, SweepConfig};
use crate::table::Table;

/// Every protocol and baseline family the `Simulation` driver can run — the
/// protocol axis of the fuzz grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolId {
    /// Algorithm 3, id-only consensus.
    Consensus,
    /// Algorithm 1, id-only reliable broadcast with a correct designated sender.
    ReliableBroadcast,
    /// Algorithm 2, id-only rotor-coordinator.
    Rotor,
    /// Algorithm 4, id-only approximate agreement.
    Approx,
    /// Algorithm 5, id-only parallel consensus.
    ParallelConsensus,
    /// Algorithm 6, id-only dynamic total ordering.
    TotalOrder,
    /// Berman–Garay–Perry phase-king consensus (knows `n`, `f`).
    PhaseKing,
    /// Srikanth–Toueg authenticated broadcast (knows `f`).
    SrikanthToueg,
    /// Dolev et al. approximate agreement (knows `f`).
    DolevApprox,
    /// The known-`f` rotating coordinator.
    KnownRotor,
}

impl ProtocolId {
    /// All ten protocol/baseline families, in a stable order.
    pub const ALL: [ProtocolId; 10] = [
        ProtocolId::Consensus,
        ProtocolId::ReliableBroadcast,
        ProtocolId::Rotor,
        ProtocolId::Approx,
        ProtocolId::ParallelConsensus,
        ProtocolId::TotalOrder,
        ProtocolId::PhaseKing,
        ProtocolId::SrikanthToueg,
        ProtocolId::DolevApprox,
        ProtocolId::KnownRotor,
    ];

    /// Stable lowercase name (matches the factory's `protocol_name`).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolId::Consensus => "consensus",
            ProtocolId::ReliableBroadcast => "reliable-broadcast",
            ProtocolId::Rotor => "rotor",
            ProtocolId::Approx => "approx-agreement",
            ProtocolId::ParallelConsensus => "parallel-consensus",
            ProtocolId::TotalOrder => "total-order",
            ProtocolId::PhaseKing => "phase-king",
            ProtocolId::SrikanthToueg => "srikanth-toueg",
            ProtocolId::DolevApprox => "dolev-approx",
            ProtocolId::KnownRotor => "known-rotor",
        }
    }

    /// Whether the family's factories assume consecutive identifiers.
    pub(crate) fn needs_consecutive_ids(self) -> bool {
        matches!(self, ProtocolId::PhaseKing | ProtocolId::KnownRotor)
    }

    /// Whether an admissible run must meet its stop condition before the round
    /// budget (the fixed-round primitives always "complete"; this marks the
    /// families whose completion is itself a theorem).
    fn expects_termination(self) -> bool {
        matches!(
            self,
            ProtocolId::Consensus
                | ProtocolId::Rotor
                | ProtocolId::Approx
                | ProtocolId::ParallelConsensus
                | ProtocolId::PhaseKing
                | ProtocolId::DolevApprox
                | ProtocolId::KnownRotor
        )
    }

    /// The smallest correct-node count a family's factory can be built with (the
    /// broadcast families need a correct designated sender; everything degrades
    /// gracefully to a single node).
    pub(crate) fn min_correct(self) -> usize {
        1
    }

    /// For families whose theorem oracle **cannot** fail at `n = 3f`, the
    /// documented reason why — the "test-documented impossibility" half of the
    /// boundary matrix. `None` means the family is expected to yield an
    /// `n = 3f` counterexample under the boundary grid's attack plans.
    pub fn boundary_immunity(self) -> Option<&'static str> {
        match self {
            // The known-f rotating coordinator only ever consults the
            // coordinators with identifiers 0…f. Under the consecutive layout
            // the factory requires, those are all correct nodes (the adversary
            // holds the *top* f identifiers), the schedule needs no
            // communication to agree on, and sender authentication stops a
            // Byzantine identity from speaking as a scheduled coordinator. The
            // first slot is therefore always a good round and the run always
            // terminates after f + 2 rounds — at n = 3f exactly as at n > 3f.
            ProtocolId::KnownRotor => Some(
                "the known-f schedule consults only coordinators 0…f, which the consecutive \
                 layout makes all-correct; sender authentication blocks every vocabulary payload",
            ),
            _ => None,
        }
    }
}

/// A self-contained, serialisable fuzz reproducer: one protocol family plus the
/// full scenario (sizes, seed, plan, churn, budget). Inputs are derived
/// deterministically from the spec inside [`run_case`], so the case is the whole
/// recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// The protocol family to run.
    pub protocol: ProtocolId,
    /// The scenario to run it in.
    pub spec: ScenarioSpec,
}

impl FuzzCase {
    /// Lowers a sweep case onto a runnable fuzz case, normalising the identifier
    /// space for the families that require consecutive identifiers.
    pub fn from_sweep(case: &SweepCase<ProtocolId>) -> Self {
        let mut spec = case.spec.clone();
        if case.protocol.needs_consecutive_ids() {
            // The sweep grid resolved any crash-plan victims against the
            // *original* identifier layout; switching the layout out from
            // under them would leave the schedule crashing ghosts.
            spec.id_space = IdSpace::Consecutive;
            rebind_crash_victims(&mut spec);
        }
        FuzzCase {
            protocol: case.protocol,
            spec,
        }
    }

    /// A one-line description used in logs and tables.
    pub fn describe(&self) -> String {
        format!(
            "{} n={} f={} seed={} plan={}",
            self.protocol.name(),
            self.spec.correct,
            self.spec.byzantine,
            self.spec.seed,
            self.spec
                .attack
                .as_ref()
                .map(AttackPlan::label)
                .unwrap_or_else(|| self.spec.adversary.name().to_string()),
        )
    }
}

/// Re-resolves the crash/restart victims of a spec whose population or
/// identifier layout changed after the sweep grid resolved them (the
/// consecutive-id normalisation of [`FuzzCase::from_sweep`], the
/// population-shrinking moves of [`shrink_case`]): any crash-cycle identifier
/// that is no longer a live *correct* identifier of the current layout is
/// redirected onto the first correct identifier not already claimed by another
/// cycle, and cycles that cannot be re-homed (more victims than correct nodes)
/// are dropped. A spec whose victims are all still valid is left untouched, so
/// the pass is idempotent and free on crash-less specs.
pub(crate) fn rebind_crash_victims(spec: &mut ScenarioSpec) {
    let victims = spec.churn.crash_cycle_ids();
    if victims.is_empty() {
        return;
    }
    let ids = spec
        .id_space
        .generate(spec.correct + spec.byzantine, spec.seed);
    let correct_ids = &ids[..spec.correct];
    let mut taken: Vec<NodeId> = victims
        .iter()
        .copied()
        .filter(|v| correct_ids.contains(v))
        .collect();
    let mut mapping = Vec::new();
    for old in victims.iter().filter(|v| !correct_ids.contains(v)) {
        match correct_ids.iter().find(|id| !taken.contains(id)) {
            Some(&new) => {
                taken.push(new);
                mapping.push((*old, new));
            }
            None => spec.churn = spec.churn.without_crash_cycle(*old),
        }
    }
    if !mapping.is_empty() {
        spec.churn = spec.churn.retarget_crash_cycles(&mapping);
    }
}

/// Deterministic binary inputs (half 0s, half 1s) for the consensus families.
fn binary_inputs(correct: usize) -> Vec<u64> {
    (0..correct).map(|i| (i % 2) as u64).collect()
}

/// Deterministic spread-out real inputs for the approximate-agreement families.
fn real_inputs(correct: usize) -> Vec<f64> {
    (0..correct).map(|i| i as f64 * 10.0).collect()
}

/// The total-ordering workload: a round-robin event stream plus one mid-run leave
/// when enough founders exist, over a fixed 16-round window.
fn total_order_plan(correct: usize) -> TotalOrderPlan<u64> {
    let mut plan = TotalOrderPlan::rounds(16);
    for round in 1..=8u64 {
        plan = plan.event(round, (round as usize) % correct.max(1), round);
    }
    if correct >= 4 {
        plan = plan.leave(10, correct - 1);
    }
    plan
}

/// Runs one fuzz case through the `Simulation` builder and attaches the checker
/// oracle verdicts to the report.
pub fn run_case(case: &FuzzCase) -> RunReport {
    let builder = ScenarioBuilder::from_spec(case.spec.clone());
    let correct = case.spec.correct;
    let mut report = match case.protocol {
        ProtocolId::Consensus => builder
            .build(ConsensusFactory::new(binary_inputs(correct)))
            .run(),
        ProtocolId::ReliableBroadcast => builder.build(BroadcastFactory::correct_source(42)).run(),
        ProtocolId::Rotor => builder.build(RotorFactory).run(),
        ProtocolId::Approx => builder
            .build(ApproxFactory::new(real_inputs(correct)))
            .run(),
        ProtocolId::ParallelConsensus => builder
            .build(
                ParallelConsensusFactory::new(vec![(0, 100), (1, 101), (2, 102)])
                    // The partial pair (held by the even-indexed correct nodes
                    // only) is the workload where Theorem 5's consistency clause
                    // binds — and what the vocabulary's boundary campaign splits
                    // at n = 3f.
                    .with_partial_pair((7, 700)),
            )
            .run(),
        ProtocolId::TotalOrder => builder
            .build(TotalOrderFactory::new(total_order_plan(correct)))
            .run(),
        ProtocolId::PhaseKing => builder
            .build(PhaseKingFactory::new(binary_inputs(correct)))
            .run(),
        ProtocolId::SrikanthToueg => builder.build(StBroadcastFactory::new(42)).run(),
        ProtocolId::DolevApprox => builder
            .build(DolevApproxFactory::new(real_inputs(correct)))
            .run(),
        ProtocolId::KnownRotor => builder.build(KnownRotorFactory).run(),
    }
    .expect("fuzz scenarios never violate engine rules");
    attach_verdicts(&mut report);
    report
}

/// Evaluates the properties over a finished case: every attached oracle verdict
/// plus the structural guarantees the report sections encode (termination within
/// the budget where the theorems promise it, rotor good rounds, parallel
/// agreement, chain-prefix consistency). Returns the violated properties;
/// non-admissible scenarios vacuously pass.
pub fn case_failures(case: &FuzzCase, report: &RunReport) -> Vec<String> {
    if !case.spec.admissible() {
        return Vec::new();
    }
    // A crash/restart schedule suspends the theorem properties: the victim's
    // volatile state is lost mid-run and the messages addressed to it while it
    // was down are gone, so the paper's guarantees (which assume a correct node
    // participates in every round) make no promise. What such a run *must*
    // satisfy are the recovery oracles — no cross-restart equivocation, a
    // replayed state consistent with the pre-crash prefix, no double-consumed
    // input — so those are the only properties asserted.
    let crash_recovery = case.spec.churn.has_crash_events();
    let mut failures = Vec::new();
    for verdict in &report.verdicts {
        if crash_recovery && verdict.oracle != "recovery" {
            continue;
        }
        if !verdict.passed {
            for violation in &verdict.violations {
                failures.push(format!("oracle {}: {}", verdict.oracle, violation));
            }
        }
    }
    if crash_recovery {
        return failures;
    }
    if case.protocol.expects_termination() && !report.status.is_completed() {
        failures.push(format!(
            "liveness: run exhausted its {}-round budget",
            case.spec.max_rounds
        ));
    }
    if let Some(rotor) = &report.rotor {
        if !rotor.good_round {
            failures.push("rotor: no good round (all-correct coordinator) occurred".into());
        }
    }
    if let Some(parallel) = &report.parallel {
        if !parallel.agreement {
            failures.push("parallel-consensus: decided pair sets differ".into());
        }
    }
    if let Some(chain) = &report.chain {
        if !chain.prefix_ok {
            failures.push("total-order: chain prefixes disagree".into());
        }
    }
    if let Some(broadcast) = &report.broadcast {
        if !broadcast.consistent {
            failures.push("broadcast: accept sets differ across correct nodes".into());
        }
    }
    failures
}

/// The *expected-failure* properties of an **inadmissible** scenario (`n ≤ 3f`
/// somewhere along the churn horizon): outside the resiliency bound the paper
/// makes no promise, so a violated theorem-property is not a bug — it is the
/// demonstration that the `n > 3f` bound is *tight*. This returns the violations
/// such a case exhibits (the same oracle and structural checks as
/// [`case_failures`], without the admissibility gate); admissible cases return
/// nothing, because for them a violation belongs to [`case_failures`].
pub fn boundary_violations(case: &FuzzCase, report: &RunReport) -> Vec<String> {
    if case.spec.admissible() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    for verdict in &report.verdicts {
        if !verdict.passed {
            for violation in &verdict.violations {
                violations.push(format!("oracle {}: {}", verdict.oracle, violation));
            }
        }
    }
    if case.protocol.expects_termination() && !report.status.is_completed() {
        violations.push(format!(
            "liveness: run exhausted its {}-round budget",
            case.spec.max_rounds
        ));
    }
    if let Some(rotor) = &report.rotor {
        if !rotor.good_round {
            violations.push("rotor: no good round (all-correct coordinator) occurred".into());
        }
    }
    if let Some(parallel) = &report.parallel {
        if !parallel.agreement {
            violations.push("parallel-consensus: decided pair sets differ".into());
        }
    }
    if let Some(chain) = &report.chain {
        if !chain.prefix_ok {
            violations.push("total-order: chain prefixes disagree".into());
        }
    }
    if let Some(broadcast) = &report.broadcast {
        if !broadcast.consistent {
            violations.push("broadcast: accept sets differ across correct nodes".into());
        }
    }
    violations
}

/// The attack-plan axis of the boundary grids: the legacy scripted presets plus
/// the vocabulary-driven behaviours that speak every family's payload language
/// (noise, per-class semantic fabrication, and a late-window boundary step that
/// starves fixed-budget primitives of the relay rounds they need).
pub fn boundary_plans() -> Vec<AttackPlan> {
    vec![
        AttackPlan::preset(AdversaryKind::Silent),
        AttackPlan::preset(AdversaryKind::SplitVote),
        AttackPlan::preset(AdversaryKind::Worst),
        AttackPlan::new().behavior(AttackBehavior::Equivocate { low: 0, high: 1 }),
        AttackPlan::new().behavior(AttackBehavior::Noise),
        AttackPlan::new().behavior(AttackBehavior::Semantic {
            strategy: SemanticStrategy::Boundary,
        }),
        AttackPlan::new().behavior(AttackBehavior::Semantic {
            strategy: SemanticStrategy::Garbage,
        }),
        // Late-window threshold pressure: amplification started this close to a
        // fixed round budget cannot finish relaying, so accept sets diverge.
        AttackPlan::new().step(
            AttackStep::new(AttackBehavior::Semantic {
                strategy: SemanticStrategy::Boundary,
            })
            .starting(9),
        ),
        // A composed plan with a redundant silent step: the violation survives
        // dropping it, so the shrinker demonstrably minimises the *plan* too.
        AttackPlan::collusion(
            AttackBehavior::Preset(AdversaryKind::SplitVote),
            1,
            AttackBehavior::Preset(AdversaryKind::Silent),
        ),
        // Stateful adaptive schedules: asymmetric delivery keyed off observed
        // traffic. At `n = 3f` the starvation schedule is the sharpest equivocation
        // -by-omission the library owns — it is what demonstrates tightness for the
        // families whose oracles survive every *oblivious* plan above.
        AttackPlan::new().behavior(AttackBehavior::Adaptive {
            strategy: AdaptiveStrategy::StarveWeakest,
        }),
        AttackPlan::new().behavior(AttackBehavior::Adaptive {
            strategy: AdaptiveStrategy::WithholdNearQuorum,
        }),
    ]
}

/// The identifier-layout axis of the default boundary grids: the sparse default
/// plus the adversary-chosen layout (Byzantine identities take the smallest
/// identifiers, fronting every identifier-ordered structure).
pub fn boundary_id_spaces() -> Vec<IdSpace> {
    vec![IdSpace::default(), IdSpace::AdversaryLow { stride: 97 }]
}

/// The grid `fuzz --boundary` sweeps: scenarios pinned *at* the `n = 3f`
/// resiliency boundary (correct = 2f, so `n = 3f` exactly) under the strong
/// attacks, for **all ten** protocol/baseline families and every boundary
/// identifier layout. The expected-failure property of this grid is that **some**
/// case exhibits a violation — if every inadmissible case still satisfied the
/// theorems, the bound would not be demonstrably tight (and our attacks would be
/// toothless).
pub fn boundary_grid(smoke: bool) -> ScenarioGrid<ProtocolId> {
    boundary_grid_with(smoke, ProtocolId::ALL.to_vec(), boundary_id_spaces())
}

/// [`boundary_grid`] with explicit protocol and identifier-layout axes — the
/// form behind the per-family boundary matrix and the CI layout matrix
/// (`experiments -- fuzz --boundary --ids <layout>`).
pub fn boundary_grid_with(
    smoke: bool,
    protocols: Vec<ProtocolId>,
    id_spaces: Vec<IdSpace>,
) -> ScenarioGrid<ProtocolId> {
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(2, 1), (4, 2)]
    } else {
        vec![(2, 1), (4, 2), (6, 3)]
    };
    ScenarioGrid::new()
        .protocols(protocols)
        .sizes(sizes)
        .plans(boundary_plans())
        .id_spaces(id_spaces)
        .trials(if smoke { 1 } else { 2 })
        .base_seed(0xB0BD_5EED)
        .max_rounds(150)
}

/// Runs the boundary grid and returns the cases that *do* violate a theorem
/// property outside the bound, each shrunk to a locally minimal demonstration.
/// Shrinking preserves both inadmissibility and the violation, so a shrunk
/// demonstration is still at (or below) the boundary — the pinned regression
/// test asserts a ≤ 6-node `n = 3f` consensus demonstration survives shrinking.
pub fn fuzz_boundary(
    grid: &ScenarioGrid<ProtocolId>,
    workers: usize,
    max_demonstrations: usize,
) -> FuzzOutcome {
    let total = grid.len();
    let config = SweepConfig {
        trials: total,
        base_seed: 0, // unused: each case's seed is derived by the grid itself
        workers,
    };
    let violating: Vec<Option<FuzzCase>> = run_trials(&config, |index, _seed| {
        let case = FuzzCase::from_sweep(&grid.case(index));
        let report = run_case(&case);
        if boundary_violations(&case, &report).is_empty() {
            None
        } else {
            Some(case)
        }
    });
    let counterexamples = violating
        .into_iter()
        .flatten()
        .take(max_demonstrations)
        .map(|case| {
            shrink_case_with(&case, &|candidate| {
                let report = run_case(candidate);
                boundary_violations(candidate, &report)
            })
        })
        .collect();
    FuzzOutcome {
        cases: total,
        counterexamples,
    }
}

/// One row of the per-family boundary matrix: either a shrunk `n = 3f`
/// counterexample for the family, or nothing — in which case the family's
/// [`ProtocolId::boundary_immunity`] is expected to document why.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilyBoundary {
    /// The protocol/baseline family.
    pub protocol: ProtocolId,
    /// Boundary cases enumerated for the family.
    pub cases: u64,
    /// The first violating case, shrunk to a locally minimal demonstration.
    pub counterexample: Option<Counterexample>,
}

impl FamilyBoundary {
    /// Whether the row states a theorem-shaped result: a violating demonstration
    /// *or* a documented impossibility. A row that is neither means the attack
    /// library cannot yet speak the family's payload language sharply enough.
    pub fn theorem_shaped(&self) -> bool {
        self.counterexample.is_some() || self.protocol.boundary_immunity().is_some()
    }
}

/// Runs the boundary grid family by family: for each of the ten families, the
/// first `n = 3f` case violating a theorem property is shrunk and returned. This
/// is the machine behind the full-boundary theorem suite — the claim "`n > 3f`
/// is tight for family X" is `counterexample.is_some()`, and the claim "family
/// X's oracle cannot fail at the boundary" is `boundary_immunity().is_some()`.
pub fn boundary_matrix(
    smoke: bool,
    workers: usize,
    id_spaces: Vec<IdSpace>,
) -> Vec<FamilyBoundary> {
    ProtocolId::ALL
        .into_iter()
        .map(|protocol| {
            let grid = boundary_grid_with(smoke, vec![protocol], id_spaces.clone());
            let outcome = fuzz_boundary(&grid, workers, 1);
            FamilyBoundary {
                protocol,
                cases: grid.len(),
                counterexample: outcome.counterexamples.into_iter().next(),
            }
        })
        .collect()
}

/// The failing properties of a *replayed* case, judged by the oracle that found
/// it: admissible cases are judged by the theorem properties
/// ([`case_failures`]), inadmissible ones by the expected-failure boundary
/// properties ([`boundary_violations`]). This is what makes a boundary
/// counterexample JSON replayable — judging it by the admissible-only property
/// set would wave every `n = 3f` reproducer through as vacuously green.
pub fn replay_failures(case: &FuzzCase, report: &RunReport) -> Vec<String> {
    if case.spec.admissible() {
        case_failures(case, report)
    } else {
        boundary_violations(case, report)
    }
}

/// The attack-plan axis of the default grids: the five legacy presets plus the
/// composed shapes the scripted enum could not express.
pub fn default_plans(smoke: bool) -> Vec<AttackPlan> {
    let mut plans = vec![
        AttackPlan::preset(AdversaryKind::SplitVote),
        AttackPlan::preset(AdversaryKind::PartialAnnounce),
        AttackPlan::crash_window(AdversaryKind::SplitVote, 1, 4),
        AttackPlan::collusion(
            AttackBehavior::Preset(AdversaryKind::SplitVote),
            1,
            AttackBehavior::Preset(AdversaryKind::AnnounceThenSilent),
        ),
        AttackPlan::new().behavior(AttackBehavior::Replay {
            visible_to_even_raw_ids: true,
        }),
        AttackPlan::new().behavior(AttackBehavior::AnnounceToSubset {
            modulus: 3,
            remainder: 1,
        }),
        AttackPlan::new().behavior(AttackBehavior::Outliers { magnitude: 1e6 }),
    ];
    if !smoke {
        plans.extend([
            AttackPlan::preset(AdversaryKind::Silent),
            AttackPlan::preset(AdversaryKind::AnnounceThenSilent),
            AttackPlan::preset(AdversaryKind::Worst),
            AttackPlan::new().behavior(AttackBehavior::Equivocate { low: 0, high: 1 }),
            AttackPlan::new().behavior(AttackBehavior::Noise),
            AttackPlan::new().behavior(AttackBehavior::Semantic {
                strategy: SemanticStrategy::Valid,
            }),
            AttackPlan::new()
                .behavior(AttackBehavior::Preset(AdversaryKind::PartialAnnounce))
                .step(
                    uba_simnet::attack::AttackStep::new(AttackBehavior::Preset(
                        AdversaryKind::SplitVote,
                    ))
                    .window(3, 9),
                ),
        ]);
    }
    plans
}

/// The churn axis of the default grids: a static network plus a mid-run Byzantine
/// join (fresh identifier, so it composes with every identifier layout).
pub fn default_churns() -> Vec<ChurnSchedule> {
    vec![
        ChurnSchedule::empty(),
        ChurnSchedule::empty().with(3, ChurnEvent::JoinByzantine(NodeId::new(9_000_001))),
    ]
}

/// The crash/restart axis of the default grids: alongside the implicit
/// crash-free point, one mid-agreement crash of a correct node with a clean
/// restart two rounds later — enough to drive the WAL replay path and the
/// recovery oracles through every family, engine and attack plan. Crash-bearing
/// cases assert *only* the recovery properties (see [`case_failures`]).
pub fn default_crash_plans() -> Vec<CrashPlan> {
    vec![CrashPlan {
        victim: 1,
        crash_round: 2,
        restart_round: 4,
        policy: RestartPolicy::Clean,
    }]
}

/// The bounded deterministic grid behind `experiments -- fuzz`: every protocol
/// family under every default plan, churn schedule and crash plan. `smoke`
/// trims the axes to the CI-sized grid (fixed seed, a few hundred cases, a
/// handful of seconds).
pub fn default_grid(smoke: bool) -> ScenarioGrid<ProtocolId> {
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(4, 1), (7, 2)]
    } else {
        vec![(4, 1), (7, 2), (10, 3), (13, 4)]
    };
    ScenarioGrid::new()
        .protocols(ProtocolId::ALL.to_vec())
        .sizes(sizes)
        .plans(default_plans(smoke))
        .churns(default_churns())
        .crash_plans(default_crash_plans())
        .trials(if smoke { 2 } else { 4 })
        .base_seed(0xF0CC_5EED)
        .max_rounds(400)
}

/// One minimised counterexample: the case as found, the case after shrinking, and
/// the properties the shrunk case still violates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The failing case exactly as the grid enumerated it.
    pub original: FuzzCase,
    /// The minimised case (replay with `experiments -- fuzz --replay`).
    pub shrunk: FuzzCase,
    /// Violated properties of the shrunk case.
    pub failures: Vec<String>,
    /// Number of accepted shrinking moves.
    pub shrink_steps: u64,
}

/// The outcome of one fuzz run.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzOutcome {
    /// Cases enumerated and executed.
    pub cases: u64,
    /// Minimised counterexamples, in grid order (capped by the runner).
    pub counterexamples: Vec<Counterexample>,
}

impl FuzzOutcome {
    /// Whether every property held on every case.
    pub fn passed(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Runs every case of the grid across `workers` threads (deterministically in the
/// worker count), then shrinks up to `max_counterexamples` failing cases.
pub fn fuzz_grid(
    grid: &ScenarioGrid<ProtocolId>,
    workers: usize,
    max_counterexamples: usize,
) -> FuzzOutcome {
    let total = grid.len();
    let config = SweepConfig {
        trials: total,
        base_seed: 0, // unused: each case's seed is derived by the grid itself
        workers,
    };
    let failing: Vec<Option<FuzzCase>> = run_trials(&config, |index, _seed| {
        let case = FuzzCase::from_sweep(&grid.case(index));
        let report = run_case(&case);
        if case_failures(&case, &report).is_empty() {
            None
        } else {
            Some(case)
        }
    });
    let counterexamples = failing
        .into_iter()
        .flatten()
        .take(max_counterexamples)
        .map(|case| shrink_case(&case))
        .collect();
    FuzzOutcome {
        cases: total,
        counterexamples,
    }
}

/// The candidate shrinking moves for a failing case, most aggressive first:
/// halve/decrement the correct population, halve/decrement/zero the Byzantine
/// population, simplify an exotic identifier layout back to the default, drop
/// the engine axis (or soften non-synchronous timing to zero-jitter), drop one
/// churn event (whole crash/restart cycles count as one event), drop one
/// attack-plan step. Every move re-resolves crash victims against the mutated
/// population ([`rebind_crash_victims`]), so shrinking the network out from
/// under a crash schedule yields a runnable candidate rather than an
/// unknown-node engine error.
fn shrink_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let spec = &case.spec;
    let mut with_spec = |mutate: &dyn Fn(&mut ScenarioSpec)| {
        let mut candidate = case.clone();
        mutate(&mut candidate.spec);
        rebind_crash_victims(&mut candidate.spec);
        out.push(candidate);
    };
    let min_correct = case.protocol.min_correct();
    for correct in [spec.correct / 2, spec.correct.saturating_sub(1)] {
        if correct >= min_correct && correct < spec.correct {
            with_spec(&|s: &mut ScenarioSpec| s.correct = correct);
        }
    }
    for byzantine in [0, spec.byzantine / 2, spec.byzantine.saturating_sub(1)] {
        if byzantine < spec.byzantine {
            with_spec(&|s: &mut ScenarioSpec| s.byzantine = byzantine);
        }
    }
    // An adversary-chosen or random identifier layout is only part of a minimal
    // demonstration if the failure actually needs it.
    if spec.id_space != IdSpace::default() && !case.protocol.needs_consecutive_ids() {
        with_spec(&|s: &mut ScenarioSpec| s.id_space = IdSpace::default());
    }
    // Timing shrinks toward synchrony, mirroring the identifier-layout move: a
    // non-synchronous engine is only part of a minimal demonstration if the
    // failure needs it. Dropping the axis entirely is the aggressive move;
    // softening the timing to zero-jitter keeps the event engine but removes
    // the delay behaviour.
    if spec.engine.is_some() {
        with_spec(&|s: &mut ScenarioSpec| s.engine = None);
    }
    if matches!(&spec.engine, Some(EngineKind::Event(t)) if *t != TimingSpec::synchronous()) {
        with_spec(&|s: &mut ScenarioSpec| {
            s.engine = Some(EngineKind::Event(TimingSpec::synchronous()));
        });
    }
    for index in 0..spec.churn.len() {
        // A crash or a restart never shrinks alone: dropping the crash leaves a
        // restart of a never-crashed node, dropping the restart strands the
        // victim — both are engine errors, not smaller demonstrations. Whole
        // cycles shrink as one move below.
        if spec.churn.events()[index].1.is_crash_cycle() {
            continue;
        }
        with_spec(&|s: &mut ScenarioSpec| s.churn = s.churn.without_event(index));
    }
    for id in spec.churn.crash_cycle_ids() {
        with_spec(&|s: &mut ScenarioSpec| s.churn = s.churn.without_crash_cycle(id));
    }
    if let Some(plan) = &spec.attack {
        for index in 0..plan.len() {
            with_spec(&|s: &mut ScenarioSpec| {
                let shrunk = s.attack.as_ref().expect("plan present").without_step(index);
                s.attack = Some(shrunk);
            });
        }
    }
    out
}

/// Greedily minimises a failing case: in each pass the first candidate move that
/// still violates a property is accepted, until no move survives. The result is a
/// local minimum — removing anything else makes the failure disappear.
pub fn shrink_case(original: &FuzzCase) -> Counterexample {
    shrink_case_with(original, &|case| {
        let report = run_case(case);
        case_failures(case, &report)
    })
}

/// The stable identity of a failing property: the bracketed `[oracle/property]`
/// tag when the failure carries one, the prefix before the first `:` otherwise
/// (`liveness`, `parallel-consensus`, …). Shrinking compares candidates by this
/// id, and the replay round-trip test uses it to assert a reproducer still
/// demonstrates the bug it was minimised from.
pub fn property_id(failure: &str) -> &str {
    if let (Some(open), Some(close)) = (failure.find('['), failure.find(']')) {
        if open < close {
            return &failure[open + 1..close];
        }
    }
    failure.split(':').next().unwrap_or(failure).trim()
}

/// The shrinker behind [`shrink_case`], parameterised over the "still
/// interesting" oracle. A candidate move is accepted iff the oracle still
/// reports a violation **with the same property id** as one of the original
/// failures ([`property_id`]) — "smaller but failing differently" is a
/// *different* bug, and accepting it would shrink one reproducer into another.
/// Boundary fuzzing passes [`boundary_violations`] here, so a shrunk
/// demonstration cannot drift back into the admissible region either (the
/// oracle returns nothing there).
pub fn shrink_case_with(
    original: &FuzzCase,
    still_failing: &dyn Fn(&FuzzCase) -> Vec<String>,
) -> Counterexample {
    let original_ids: BTreeSet<String> = still_failing(original)
        .iter()
        .map(|failure| property_id(failure).to_string())
        .collect();
    // Admissibility is part of the bug's identity too: an in-bound agreement
    // violation is a protocol bug, an `n = 3f` one is a tightness demonstration
    // — shrinking must not turn one into the other even when the property id
    // matches. (The grid oracles enforce this implicitly by returning nothing
    // on the other side; the guard makes it hold for every oracle, including
    // the [`replay_failures`] one the margin-guided search shrinks through.)
    let admissible = original.spec.admissible();
    let keeps_the_bug = |case: &FuzzCase| {
        case.spec.admissible() == admissible
            && still_failing(case)
                .iter()
                .any(|failure| original_ids.contains(property_id(failure)))
    };
    let mut current = original.clone();
    let mut shrink_steps = 0u64;
    loop {
        let accepted = shrink_candidates(&current)
            .into_iter()
            .find(|candidate| keeps_the_bug(candidate));
        match accepted {
            Some(candidate) => {
                current = candidate;
                shrink_steps += 1;
            }
            None => break,
        }
    }
    let failures = still_failing(&current);
    Counterexample {
        original: original.clone(),
        shrunk: current,
        failures,
        shrink_steps,
    }
}

/// Renders a per-protocol summary of a fuzz run (rows only for the protocols the
/// grid actually enumerates, counted from its case list).
pub fn fuzz_table(grid: &ScenarioGrid<ProtocolId>, outcome: &FuzzOutcome) -> Table {
    let mut table = Table::new(
        format!("fuzz: {} cases over the scenario grid", outcome.cases),
        &["protocol", "cases", "counterexamples"],
    );
    let mut case_counts = vec![0u64; ProtocolId::ALL.len()];
    for case in grid.cases() {
        if let Some(slot) = ProtocolId::ALL.iter().position(|&p| p == case.protocol) {
            case_counts[slot] += 1;
        }
    }
    for (protocol, cases) in ProtocolId::ALL.into_iter().zip(case_counts) {
        if cases == 0 {
            continue;
        }
        let counterexamples = outcome
            .counterexamples
            .iter()
            .filter(|ce| ce.original.protocol == protocol)
            .count();
        table.push_row(vec![
            protocol.name().to_string(),
            cases.to_string(),
            counterexamples.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::sim::Simulation;

    #[test]
    fn protocol_ids_serialise_and_name_stably() {
        for protocol in ProtocolId::ALL {
            let value = serde::Serialize::to_value(&protocol);
            let back: ProtocolId = serde::Deserialize::from_value(&value).unwrap();
            assert_eq!(back, protocol);
            assert!(!protocol.name().is_empty());
        }
    }

    #[test]
    fn fuzz_cases_normalise_baseline_id_spaces() {
        let grid = ScenarioGrid::new()
            .protocols(vec![ProtocolId::PhaseKing, ProtocolId::Consensus])
            .sizes(vec![(4, 1)]);
        let phase_king = FuzzCase::from_sweep(&grid.case(0));
        assert_eq!(phase_king.spec.id_space, IdSpace::Consecutive);
        let consensus = FuzzCase::from_sweep(&grid.case(1));
        assert_eq!(consensus.spec.id_space, IdSpace::default());
        assert!(consensus.describe().starts_with("consensus n=4 f=1"));
    }

    #[test]
    fn a_clean_case_runs_and_passes_all_properties() {
        let case = FuzzCase {
            protocol: ProtocolId::Consensus,
            spec: Simulation::scenario()
                .correct(5)
                .byzantine(1)
                .seed(7)
                .attack(AttackPlan::preset(AdversaryKind::SplitVote))
                .spec()
                .clone(),
        };
        let report = run_case(&case);
        assert!(report.completed());
        assert!(!report.verdicts.is_empty(), "oracles must have run");
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
    }

    #[test]
    fn inadmissible_cases_pass_vacuously() {
        // n = 3f: the split-vote adversary may prevent agreement, and that is not
        // a counterexample.
        let case = FuzzCase {
            protocol: ProtocolId::Consensus,
            spec: Simulation::scenario()
                .correct(4)
                .byzantine(2)
                .seed(23)
                .max_rounds(60)
                .attack(AttackPlan::preset(AdversaryKind::SplitVote))
                .spec()
                .clone(),
        };
        assert!(!case.spec.admissible());
        let report = run_case(&case);
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
    }

    #[test]
    fn shrink_candidates_cover_every_axis() {
        let case = FuzzCase {
            protocol: ProtocolId::Consensus,
            spec: Simulation::scenario()
                .correct(8)
                .byzantine(2)
                .churn(
                    ChurnSchedule::empty()
                        .with(3, ChurnEvent::JoinByzantine(NodeId::new(9_000_001))),
                )
                .attack(AttackPlan::collusion(
                    AttackBehavior::Preset(AdversaryKind::SplitVote),
                    1,
                    AttackBehavior::Preset(AdversaryKind::Silent),
                ))
                .spec()
                .clone(),
        };
        let candidates = shrink_candidates(&case);
        assert!(candidates.iter().any(|c| c.spec.correct == 4), "halving");
        assert!(candidates.iter().any(|c| c.spec.correct == 7), "decrement");
        assert!(candidates.iter().any(|c| c.spec.byzantine == 0), "no byz");
        assert!(candidates.iter().any(|c| c.spec.churn.is_empty()));
        assert!(candidates
            .iter()
            .any(|c| c.spec.attack.as_ref().unwrap().len() == 1));
    }

    #[test]
    fn crash_cycles_shrink_as_a_unit_and_victims_rebind() {
        let base = Simulation::scenario()
            .correct(8)
            .byzantine(2)
            .seed(11)
            .spec()
            .clone();
        let victim = base.id_space.generate(10, base.seed)[1];
        let case = FuzzCase {
            protocol: ProtocolId::Consensus,
            spec: Simulation::scenario()
                .correct(8)
                .byzantine(2)
                .seed(11)
                .churn(
                    ChurnSchedule::empty()
                        .with(2, ChurnEvent::Crash(victim))
                        .with(3, ChurnEvent::JoinByzantine(NodeId::new(9_000_001)))
                        .with(
                            4,
                            ChurnEvent::Restart {
                                id: victim,
                                policy: RestartPolicy::Clean,
                            },
                        ),
                )
                .spec()
                .clone(),
        };
        let candidates = shrink_candidates(&case);
        // No candidate ever carries half a cycle: a crash without its restart
        // (or vice versa) is an engine error, not a smaller demonstration.
        for candidate in &candidates {
            let crashes = candidate
                .spec
                .churn
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, ChurnEvent::Crash(_)))
                .count();
            let restarts = candidate
                .spec
                .churn
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, ChurnEvent::Restart { .. }))
                .count();
            assert_eq!(crashes, restarts, "orphaned cycle in {candidate:?}");
        }
        // The whole-cycle move exists and leaves the join event alone…
        assert!(candidates
            .iter()
            .any(|c| !c.spec.churn.has_crash_events() && c.spec.churn.len() == 1));
        // …and the join event still shrinks individually, keeping the cycle.
        assert!(candidates
            .iter()
            .any(|c| c.spec.churn.len() == 2 && c.spec.churn.has_crash_events()));
        // Population moves re-home the victim inside the shrunken layout.
        let halved = candidates
            .iter()
            .find(|c| c.spec.correct == 4)
            .expect("halving move");
        let ids = halved.spec.id_space.generate(6, halved.spec.seed);
        let rebound = halved.spec.churn.crash_cycle_ids()[0];
        assert!(
            ids[..4].contains(&rebound),
            "victim {rebound:?} is a live correct identifier"
        );
    }

    #[test]
    fn from_sweep_rebinds_crash_victims_for_consecutive_id_families() {
        let grid = ScenarioGrid::new()
            .protocols(vec![ProtocolId::PhaseKing])
            .sizes(vec![(4, 1)])
            .crash_plans(default_crash_plans())
            .max_rounds(60);
        // Index 0 is the implicit crash-free point; index 1 carries the plan.
        let case = FuzzCase::from_sweep(&grid.case(1));
        assert_eq!(case.spec.id_space, IdSpace::Consecutive);
        let victims = case.spec.churn.crash_cycle_ids();
        assert_eq!(victims.len(), 1);
        let ids = IdSpace::Consecutive.generate(5, case.spec.seed);
        assert!(
            ids[..4].contains(&victims[0]),
            "victim survives the consecutive-id normalisation"
        );
        // The rebound schedule is actually runnable and clean.
        let report = run_case(&case);
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
    }

    #[test]
    fn crash_cases_assert_only_the_recovery_properties() {
        let grid = ScenarioGrid::new()
            .protocols(vec![ProtocolId::Consensus])
            .sizes(vec![(4, 1)])
            .crash_plans(default_crash_plans())
            .max_rounds(60);
        let case = FuzzCase::from_sweep(&grid.case(1));
        assert!(case.spec.churn.has_crash_events());
        assert!(case.spec.admissible(), "one crash keeps n > 3f");
        let mut report = run_case(&case);
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
        let restarts = &report.recovery.as_ref().expect("crash run").restarts;
        assert_eq!(restarts.len(), 1);
        // A tampered theorem section is invisible to a crash-bearing case —
        // the paper makes no promise once a correct node loses rounds…
        let section = report.consensus.as_mut().expect("consensus section");
        assert!(!section.decisions.is_empty());
        section.decisions[0].value = 1 - section.decisions[0].value;
        attach_verdicts(&mut report);
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
        // …but a violated recovery property is exactly what it must catch.
        report.recovery.as_mut().expect("crash run").restarts[0].send_conflicts = 3;
        attach_verdicts(&mut report);
        let failures = case_failures(&case, &report);
        assert!(
            failures
                .iter()
                .any(|f| property_id(f) == "recovery/equivocation"),
            "unexpected failures: {failures:?}"
        );
    }

    #[test]
    fn shrinking_moves_the_engine_axis_toward_synchrony() {
        let mut case = FuzzCase {
            protocol: ProtocolId::Consensus,
            spec: Simulation::scenario()
                .correct(4)
                .byzantine(1)
                .engine(EngineKind::Event(
                    TimingSpec::synchronous()
                        .with_delay(uba_simnet::DelaySpec::Jitter { min: 1, max: 3 }),
                ))
                .spec()
                .clone(),
        };
        let candidates = shrink_candidates(&case);
        assert!(
            candidates.iter().any(|c| c.spec.engine.is_none()),
            "the aggressive move drops the axis"
        );
        assert!(
            candidates
                .iter()
                .any(|c| c.spec.engine == Some(EngineKind::Event(TimingSpec::synchronous()))),
            "the soft move keeps the engine but zeroes the timing"
        );

        // Once the timing is synchronous only the drop-the-axis move touches
        // the engine: every candidate either keeps it verbatim or clears it.
        case.spec.engine = Some(EngineKind::Event(TimingSpec::synchronous()));
        let candidates = shrink_candidates(&case);
        let engine_moves: Vec<_> = candidates
            .iter()
            .filter(|c| c.spec.engine != case.spec.engine)
            .collect();
        assert_eq!(engine_moves.len(), 1);
        assert!(engine_moves[0].spec.engine.is_none());

        // And with no engine set, neither move fires.
        case.spec.engine = None;
        assert!(shrink_candidates(&case)
            .iter()
            .all(|c| c.spec.engine.is_none()));
    }
}
