//! # uba-bench
//!
//! Workload generators, the E1–E10 experiment harness, and shared helpers for the
//! Criterion benchmarks.
//!
//! The paper is a theory paper with no empirical tables; its "results" are theorems
//! about correctness, resiliency and complexity. The experiment suite here validates
//! each of those claims empirically (see `DESIGN.md` for the claim ↔ experiment map
//! and `EXPERIMENTS.md` for the recorded outcomes). Every experiment is a pure
//! function returning a [`Table`], so the same code backs the `experiments` binary,
//! the integration tests and the recorded outputs.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p uba-bench --release --bin experiments -- all
//! cargo bench --workspace
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod experiments_ext;
pub mod fuzz;
pub mod montecarlo;
pub mod scaling;
pub mod search;
pub mod soak;
pub mod stream;
pub mod table;
pub mod workload;

pub use baseline::{baseline_file, write_baseline, BaselineFile};
pub use experiments::{all_experiments, experiment_by_name};
pub use fuzz::{
    boundary_grid, boundary_grid_with, boundary_id_spaces, boundary_matrix, boundary_violations,
    default_grid, fuzz_boundary, fuzz_grid, property_id, replay_failures, run_case, Counterexample,
    FamilyBoundary, FuzzCase, ProtocolId,
};
pub use montecarlo::{ResilienceSweep, SweepConfig};
pub use scaling::{scaling_file, write_scaling, ScalingFile};
pub use search::{search_grid, SearchConfig, SearchOutcome, SearchStep};
pub use soak::{run_soak, soak_file, soak_table, write_soak, SoakConfig, SoakFile, SoakRow};
pub use stream::{
    run_consensus_stream, run_total_order_stream, stream_drift, stream_file, stream_table,
    write_stream, StreamConfig, StreamFile, StreamOutcome, StreamRow,
};
pub use table::Table;
