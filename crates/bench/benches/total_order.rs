//! E9 bench: dynamic total ordering — events every round, a join and a leave — for
//! growing founder counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_core::TotalOrderNode;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, NodeId, Protocol, SyncEngine};

fn run_ledger(founders: usize, rounds: u64, seed: u64) -> usize {
    let ids = IdSpace::default().generate(founders, seed);
    let nodes: Vec<TotalOrderNode<u64>> =
        ids.iter().map(|&id| TotalOrderNode::founding(id)).collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    for round in 0..rounds {
        if round == 12 {
            engine
                .add_node(TotalOrderNode::joining(NodeId::new(999_999)))
                .unwrap();
        }
        let submitter = ids[(round as usize) % founders];
        if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == submitter) {
            node.submit_event(round);
        }
        engine.run_rounds(1).unwrap();
    }
    engine.nodes()[0].chain().len()
}

fn bench_total_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_order");
    group.sample_size(10);
    for &founders in &[4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("founders", founders), &founders, |b, _| {
            b.iter(|| {
                let chain = run_ledger(founders, 60, 2021 + founders as u64);
                assert!(chain > 0);
                chain
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_total_order);
criterion_main!(benches);
