//! E13 bench: cost of consensus under oblivious (scripted) versus adaptive (rushing,
//! traffic-aware) attackers, on identical split-input workloads at `n = 3f + 1`.
//!
//! Every iteration runs a full consensus execution and asserts agreement/validity via
//! the `uba-checker` oracle, so the measured time includes the verification overhead
//! uniformly across all attackers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_bench::experiments_ext::consensus_under;
use uba_core::adversaries::{AnnounceThenSilent, PartialAnnounce, SplitVote};
use uba_core::attackers::{EquivocatingCoordinator, MinorityBooster};
use uba_simnet::adversary::SilentAdversary;

fn bench_adversary_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_adversary_ablation");
    group.sample_size(10);
    let f = 2usize;
    let correct = 2 * f + 1;
    let seed = 4242u64;

    group.bench_with_input(BenchmarkId::new("silent", f), &f, |b, _| {
        b.iter(|| consensus_under(correct, f, seed, SilentAdversary))
    });
    group.bench_with_input(BenchmarkId::new("announce_then_silent", f), &f, |b, _| {
        b.iter(|| consensus_under(correct, f, seed, AnnounceThenSilent))
    });
    group.bench_with_input(BenchmarkId::new("partial_announce", f), &f, |b, _| {
        b.iter(|| consensus_under(correct, f, seed, PartialAnnounce))
    });
    group.bench_with_input(BenchmarkId::new("split_vote", f), &f, |b, _| {
        b.iter(|| consensus_under(correct, f, seed, SplitVote::new(0u64, 1u64)))
    });
    group.bench_with_input(BenchmarkId::new("minority_booster", f), &f, |b, _| {
        b.iter(|| consensus_under(correct, f, seed, MinorityBooster::new(0u64, 1u64)))
    });
    group.bench_with_input(
        BenchmarkId::new("equivocating_coordinator", f),
        &f,
        |b, _| {
            b.iter(|| consensus_under(correct, f, seed, EquivocatingCoordinator::new(0u64, 1u64)))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_adversary_ablation);
criterion_main!(benches);
