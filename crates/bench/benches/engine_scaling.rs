//! Engine-scaling bench: wall-clock of one broadcast-heavy consensus run as the
//! system grows, serial vs the opt-in parallel node-step path.
//!
//! This measures the `SyncEngine::run_round` hot path itself (broadcast-aware
//! traffic, hashed dedup, O(1) membership): the protocol work per node is fixed,
//! so the time per benchmark tracks the engine's per-round cost at each `n`. The
//! recorded trajectory lives in `BENCH_scaling.json` (`experiments -- scaling`);
//! this bench is the interactive view of the same hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};

fn consensus_run(n: usize, parallel: bool) -> u64 {
    let f = (n - 1) / 3;
    let correct = n - f;
    let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
    let mut harness = Simulation::scenario()
        .correct(correct)
        .byzantine(f)
        .seed(0x5CA1E + n as u64)
        .max_rounds(5_000)
        .adversary(AdversaryKind::SplitVote)
        .consensus(&inputs);
    if parallel {
        harness = harness.parallel_stepping();
    }
    let report = harness.run().expect("scaling bench run completes");
    assert!(report.completed());
    report.messages.correct
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    for &n in &[16usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter(|| consensus_run(n, false))
        });
        // The parallel path only engages above the engine's node-count threshold
        // (64 by default); smaller sizes would measure the serial path twice.
        if n >= 64 {
            group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, &n| {
                b.iter(|| consensus_run(n, true))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
