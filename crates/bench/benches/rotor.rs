//! E3 bench: rotor-coordinator termination across system sizes, against the trivial
//! known-`f` rotating coordinator baseline, both through the `Simulation` builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::KnownRotorFactory;
use uba_core::quorum::max_faults;
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_simnet::IdSpace;

fn bench_rotor(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotor");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let f = max_faults(n);
        group.bench_with_input(BenchmarkId::new("id_only", n), &n, |b, _| {
            b.iter(|| {
                let report = Simulation::scenario()
                    .correct(n - f)
                    .byzantine(f)
                    .seed(2021 + n as u64)
                    .adversary(AdversaryKind::AnnounceThenSilent)
                    .rotor()
                    .run()
                    .unwrap();
                assert!(report.rotor.as_ref().unwrap().good_round);
                report.rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("known_f_baseline", n), &n, |b, _| {
            b.iter(|| {
                Simulation::scenario()
                    .correct(n - f)
                    .byzantine(f)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .max_rounds(3 * n as u64 + 10)
                    .build(KnownRotorFactory)
                    .run()
                    .unwrap()
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rotor);
criterion_main!(benches);
