//! E3 bench: rotor-coordinator termination across system sizes, against the trivial
//! known-`f` rotating coordinator baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::KnownRotor;
use uba_core::quorum::max_faults;
use uba_core::runner::{run_rotor, AdversaryKind, Scenario};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, SyncEngine};

fn bench_rotor(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotor");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, 2021 + n as u64);
        group.bench_with_input(BenchmarkId::new("id_only", n), &n, |b, _| {
            b.iter(|| {
                let report = run_rotor(&scenario, AdversaryKind::AnnounceThenSilent).unwrap();
                assert!(report.good_round);
                report
            })
        });
        group.bench_with_input(BenchmarkId::new("known_f_baseline", n), &n, |b, _| {
            b.iter(|| {
                let ids = IdSpace::Consecutive.generate(n, 0);
                let nodes: Vec<_> =
                    ids[..n - f].iter().map(|&id| KnownRotor::new(id, f, id.raw())).collect();
                let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[n - f..].to_vec());
                engine.run_until_all_terminated(3 * n as u64 + 10).unwrap();
                engine.round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rotor);
criterion_main!(benches);
