//! E14 bench: wall-clock scaling of the parallel Monte-Carlo sweep harness with the
//! worker-thread count. The workload (32 consensus trials under a split-vote
//! adversary) is identical for every worker count; only the fan-out changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_bench::montecarlo::{ResilienceSweep, SweepConfig};
use uba_core::sim::AdversaryKind;

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo_scaling");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4] {
        let sweep = ResilienceSweep {
            correct: 5,
            byzantine: 2,
            adversary: AdversaryKind::SplitVote,
            config: SweepConfig {
                trials: 32,
                base_seed: 99,
                workers,
            },
        };
        group.bench_with_input(BenchmarkId::new("workers", workers), &sweep, |b, sweep| {
            b.iter(|| {
                let outcome = sweep.run();
                assert!((outcome.agreement.rate() - 1.0).abs() < 1e-12);
                outcome.rounds.mean
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_scaling);
criterion_main!(benches);
