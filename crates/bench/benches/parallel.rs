//! E8 bench: parallel consensus with growing numbers of concurrent instances and
//! Byzantine ghost-pair injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_core::adversaries::GhostPairInjector;
use uba_core::ParallelConsensus;
use uba_simnet::{IdSpace, SyncEngine};

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_consensus");
    group.sample_size(10);
    for &k in &[1usize, 8, 32, 64] {
        group.bench_with_input(BenchmarkId::new("instances", k), &k, |b, _| {
            b.iter(|| {
                let correct = 7usize;
                let f = 2usize;
                let ids = IdSpace::default().generate(correct + f, 2021 + k as u64);
                let pairs: Vec<(u64, u64)> = (0..k as u64).map(|i| (i, i * 10)).collect();
                let nodes: Vec<_> = ids[..correct]
                    .iter()
                    .map(|&id| ParallelConsensus::new(id, pairs.clone()))
                    .collect();
                let adversary =
                    GhostPairInjector::new(vec![(1_000_001, 13u64), (1_000_002, 17u64)]);
                let mut engine = SyncEngine::new(nodes, adversary, ids[correct..].to_vec());
                engine.run_to_termination(400).unwrap();
                let decision = engine.outputs()[0].1.clone().unwrap();
                assert_eq!(decision.pairs.len(), k);
                engine.round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
