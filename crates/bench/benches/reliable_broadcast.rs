//! E1 bench: reliable broadcast (Algorithm 1) across system sizes and source
//! behaviours. Regenerates the timing series behind the E1 table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_core::quorum::max_faults;
use uba_core::runner::{
    run_broadcast_correct_source, run_broadcast_equivocating_source, Scenario,
};

fn bench_reliable_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliable_broadcast");
    group.sample_size(10);
    for &n in &[7usize, 13, 25, 49] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, 2021 + n as u64);
        group.bench_with_input(BenchmarkId::new("correct_source", n), &n, |b, _| {
            b.iter(|| {
                let report = run_broadcast_correct_source(&scenario, 42, 12).unwrap();
                assert!(report.consistent);
                report
            })
        });
        group.bench_with_input(BenchmarkId::new("equivocating_source", n), &n, |b, _| {
            b.iter(|| {
                let report = run_broadcast_equivocating_source(&scenario, 1, 2, 12).unwrap();
                assert!(report.consistent);
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliable_broadcast);
criterion_main!(benches);
