//! E1 bench: reliable broadcast (Algorithm 1) across system sizes and source
//! behaviours, driven through the unified `Simulation` builder. Regenerates the
//! timing series behind the E1 table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_core::quorum::max_faults;
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};

fn bench_reliable_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliable_broadcast");
    group.sample_size(10);
    for &n in &[7usize, 13, 25, 49] {
        let f = max_faults(n);
        let builder = || {
            Simulation::scenario()
                .correct(n - f)
                .byzantine(f)
                .seed(2021 + n as u64)
                .adversary(AdversaryKind::AnnounceThenSilent)
        };
        group.bench_with_input(BenchmarkId::new("correct_source", n), &n, |b, _| {
            b.iter(|| {
                let report = builder().broadcast(42).rounds(12).run().unwrap();
                assert!(report.broadcast.as_ref().unwrap().consistent);
                report.messages.correct
            })
        });
        group.bench_with_input(BenchmarkId::new("equivocating_source", n), &n, |b, _| {
            b.iter(|| {
                let report = builder()
                    .broadcast_equivocating(1, 2)
                    .rounds(12)
                    .run()
                    .unwrap();
                assert!(report.broadcast.as_ref().unwrap().consistent);
                report.messages.correct
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliable_broadcast);
criterion_main!(benches);
