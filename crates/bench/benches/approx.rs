//! E6 bench: approximate agreement — single-shot contraction and iterated convergence
//! of the id-only Algorithm 4 vs the known-`f` Dolev et al. baseline, all driven
//! through the unified `Simulation` builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::DolevApproxFactory;
use uba_core::quorum::max_faults;
use uba_core::sim::{AdversaryKind, ScenarioBuilder, ScenarioExt, Simulation};
use uba_simnet::IdSpace;

fn scenario(correct: usize, byzantine: usize, seed: u64) -> ScenarioBuilder {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .seed(seed)
}

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_agreement");
    group.sample_size(10);
    for &n in &[16usize, 32, 64, 128] {
        let f = max_faults(n);
        let correct = n - f;
        let inputs: Vec<f64> = (0..correct).map(|i| i as f64).collect();

        group.bench_with_input(BenchmarkId::new("id_only_single_shot", n), &n, |b, _| {
            b.iter(|| {
                let report = scenario(correct, f, 2021 + n as u64)
                    .adversary(AdversaryKind::Worst)
                    .approx(&inputs)
                    .run()
                    .unwrap();
                let section = report.approx.unwrap();
                assert!(section.outputs_in_range && section.contraction < 1.0);
                section.contraction
            })
        });
        group.bench_with_input(BenchmarkId::new("id_only_iterated_6", n), &n, |b, _| {
            b.iter(|| {
                scenario(correct, f, 2021 + n as u64)
                    .iterated_approx(&inputs, 6)
                    .run()
                    .unwrap()
                    .spreads
                    .unwrap()
                    .per_iteration
            })
        });
        group.bench_with_input(BenchmarkId::new("dolev_baseline", n), &n, |b, _| {
            b.iter(|| {
                scenario(correct, f, 0)
                    .ids(IdSpace::Consecutive)
                    .max_rounds(4)
                    .build(DolevApproxFactory::new(inputs.clone()))
                    .run()
                    .unwrap()
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
