//! E6 bench: approximate agreement — single-shot contraction and iterated convergence
//! of the id-only Algorithm 4 vs the known-`f` Dolev et al. baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::DolevApprox;
use uba_core::quorum::max_faults;
use uba_core::runner::{run_approx, run_iterated_approx, Scenario};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, SyncEngine};

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_agreement");
    group.sample_size(10);
    for &n in &[16usize, 32, 64, 128] {
        let f = max_faults(n);
        let correct = n - f;
        let inputs: Vec<f64> = (0..correct).map(|i| i as f64).collect();
        let scenario = Scenario::new(correct, f, 2021 + n as u64);

        group.bench_with_input(BenchmarkId::new("id_only_single_shot", n), &n, |b, _| {
            b.iter(|| {
                let report = run_approx(&scenario, &inputs).unwrap();
                assert!(report.outputs_in_range && report.contraction < 1.0);
                report.contraction
            })
        });
        group.bench_with_input(BenchmarkId::new("id_only_iterated_6", n), &n, |b, _| {
            b.iter(|| run_iterated_approx(&scenario, &inputs, 6).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dolev_baseline", n), &n, |b, _| {
            b.iter(|| {
                let ids = IdSpace::Consecutive.generate(n, 0);
                let nodes: Vec<_> = ids[..correct]
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &x)| DolevApprox::new(id, f, (x * 1e6) as i64))
                    .collect();
                let mut engine =
                    SyncEngine::new(nodes, SilentAdversary, ids[correct..].to_vec());
                engine.run_until_all_output(4).unwrap();
                engine.round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
