//! E11 bench: dynamic approximate agreement under increasing churn rates
//! (Section XI). Each iteration runs a 24-round dynamic execution with one join and
//! one leave every `period` rounds and returns the final correct-node spread.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_bench::workload::{rolling_churn_plan, uniform_reals};
use uba_core::dynamic_approx::{run_dynamic_approx, ChurnPlan};
use uba_core::Real;
use uba_simnet::{IdSpace, NodeId};

fn bench_dynamic_approx_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_approx_churn");
    group.sample_size(10);
    let rounds = 24u64;
    for &period in &[0u64, 12, 6, 3] {
        let ids = IdSpace::default().generate(10, 7);
        let inputs = uniform_reals(10, 0.0, 100.0, 7 + period);
        let initial: Vec<(NodeId, Real)> = ids
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| (id, Real::from_f64(x)))
            .collect();
        let plan = if period == 0 {
            ChurnPlan::none()
        } else {
            rolling_churn_plan(&ids, rounds, period, 0.0, 100.0, 7 + period)
        };
        let label = if period == 0 {
            "no_churn".to_string()
        } else {
            format!("period_{period}")
        };
        group.bench_with_input(
            BenchmarkId::new("spread_after_24_rounds", label),
            &plan,
            |b, plan| {
                b.iter(|| {
                    let report = run_dynamic_approx(&initial, plan, rounds).unwrap();
                    report.final_spread()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic_approx_churn);
criterion_main!(benches);
