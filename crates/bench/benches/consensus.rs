//! E4/E5 bench: id-only consensus (Algorithm 3) vs the classic phase-king that knows
//! `n` and `f`, on identical split-input workloads, through the `Simulation` builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::PhaseKingFactory;
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_simnet::IdSpace;

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    group.sample_size(10);
    for &f in &[1usize, 2, 3, 4] {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let id_only = |kind: AdversaryKind| {
            Simulation::scenario()
                .correct(correct)
                .byzantine(f)
                .seed(2021 + f as u64)
                .adversary(kind)
        };

        group.bench_with_input(
            BenchmarkId::new("id_only_announce_silent", f),
            &f,
            |b, _| {
                b.iter(|| {
                    let report = id_only(AdversaryKind::AnnounceThenSilent)
                        .consensus(&inputs)
                        .run()
                        .unwrap();
                    let section = report.consensus.as_ref().unwrap();
                    assert!(section.agreement && section.validity);
                    report.rounds
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("id_only_split_vote", f), &f, |b, _| {
            b.iter(|| {
                let report = id_only(AdversaryKind::SplitVote)
                    .consensus(&inputs)
                    .run()
                    .unwrap();
                let section = report.consensus.as_ref().unwrap();
                assert!(section.agreement && section.validity);
                report.rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("phase_king_baseline", f), &f, |b, _| {
            b.iter(|| {
                Simulation::scenario()
                    .correct(correct)
                    .byzantine(f)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .max_rounds(300)
                    .build(PhaseKingFactory::new(inputs.clone()))
                    .run()
                    .unwrap()
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
