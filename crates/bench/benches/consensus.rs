//! E4/E5 bench: id-only consensus (Algorithm 3) vs the classic phase-king that knows
//! `n` and `f`, on identical split-input workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::PhaseKing;
use uba_core::runner::{run_consensus, AdversaryKind, Scenario};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, SyncEngine};

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    group.sample_size(10);
    for &f in &[1usize, 2, 3, 4] {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let scenario = Scenario::new(correct, f, 2021 + f as u64);

        group.bench_with_input(BenchmarkId::new("id_only_announce_silent", f), &f, |b, _| {
            b.iter(|| {
                let report =
                    run_consensus(&scenario, &inputs, AdversaryKind::AnnounceThenSilent).unwrap();
                assert!(report.agreement && report.validity);
                report.rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("id_only_split_vote", f), &f, |b, _| {
            b.iter(|| {
                let report =
                    run_consensus(&scenario, &inputs, AdversaryKind::SplitVote).unwrap();
                assert!(report.agreement && report.validity);
                report.rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("phase_king_baseline", f), &f, |b, _| {
            b.iter(|| {
                let ids = IdSpace::Consecutive.generate(n, 0);
                let nodes: Vec<_> = ids[..correct]
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &x)| PhaseKing::new(id, ids.clone(), f, x))
                    .collect();
                let mut engine =
                    SyncEngine::new(nodes, SilentAdversary, ids[correct..].to_vec());
                engine.run_until_all_terminated(300).unwrap();
                engine.round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
