//! E7 bench: the Section IX partition constructions under the three timing models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_core::impossibility::{run_partition_experiment, TimingModel};

fn bench_impossibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("impossibility");
    group.sample_size(10);
    for &(a, b_size) in &[(4usize, 4usize), (8, 8), (16, 16)] {
        for (label, model) in [
            ("synchronous", TimingModel::Synchronous),
            (
                "semi_synchronous",
                TimingModel::SemiSynchronous { cross_delay: 1_000 },
            ),
            ("asynchronous", TimingModel::Asynchronous),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{a}+{b_size}")),
                &(a, b_size),
                |bench, _| {
                    bench.iter(|| {
                        let outcome = run_partition_experiment(a, b_size, model, 2021).unwrap();
                        match model {
                            TimingModel::Synchronous => assert!(outcome.agreement),
                            _ => assert!(!outcome.agreement),
                        }
                        outcome.ticks
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_impossibility);
criterion_main!(benches);
