//! E10 bench: message complexity of id-only reliable broadcast vs the classic
//! Srikanth–Toueg broadcast, as a function of the system size, through the
//! `Simulation` builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::StBroadcastFactory;
use uba_core::quorum::max_faults;
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_simnet::IdSpace;

fn bench_message_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_complexity");
    group.sample_size(10);
    for &n in &[7usize, 13, 25, 49] {
        let f = max_faults(n);
        group.bench_with_input(BenchmarkId::new("id_only_rb", n), &n, |b, _| {
            b.iter(|| {
                Simulation::scenario()
                    .correct(n - f)
                    .byzantine(f)
                    .seed(2021 + n as u64)
                    .adversary(AdversaryKind::AnnounceThenSilent)
                    .broadcast(7)
                    .rounds(8)
                    .run()
                    .unwrap()
                    .messages
                    .correct
            })
        });
        group.bench_with_input(BenchmarkId::new("srikanth_toueg", n), &n, |b, _| {
            b.iter(|| {
                Simulation::scenario()
                    .correct(n - f)
                    .byzantine(f)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .build(StBroadcastFactory::new(7))
                    .rounds(8)
                    .run()
                    .unwrap()
                    .messages
                    .correct
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_message_complexity);
criterion_main!(benches);
