//! E10 bench: message complexity of id-only reliable broadcast vs the classic
//! Srikanth–Toueg broadcast, as a function of the system size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uba_baselines::StBroadcast;
use uba_simnet::adversary::SilentAdversary;
use uba_core::quorum::max_faults;
use uba_core::runner::{run_broadcast_correct_source, Scenario};
use uba_simnet::{IdSpace, SyncEngine};

fn bench_message_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_complexity");
    group.sample_size(10);
    for &n in &[7usize, 13, 25, 49] {
        let f = max_faults(n);
        group.bench_with_input(BenchmarkId::new("id_only_rb", n), &n, |b, _| {
            let scenario = Scenario::new(n - f, f, 2021 + n as u64);
            b.iter(|| {
                let report = run_broadcast_correct_source(&scenario, 7, 8).unwrap();
                report.messages
            })
        });
        group.bench_with_input(BenchmarkId::new("srikanth_toueg", n), &n, |b, _| {
            b.iter(|| {
                let ids = IdSpace::Consecutive.generate(n, 0);
                let source = ids[0];
                let nodes: Vec<_> = ids[..n - f]
                    .iter()
                    .map(|&id| {
                        if id == source {
                            StBroadcast::sender(id, f, 7u64)
                        } else {
                            StBroadcast::receiver(id, source, f)
                        }
                    })
                    .collect();
                let mut engine =
                    SyncEngine::new(nodes, SilentAdversary, ids[n - f..].to_vec());
                engine.run_rounds(8).unwrap();
                engine.metrics().correct_messages
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_message_complexity);
criterion_main!(benches);
