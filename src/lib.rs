//! # uba
//!
//! Workspace facade for the reproduction of Khanchandani & Wattenhofer,
//! *"Byzantine Agreement with Unknown Participants and Failures"* (IPDPS 2021).
//!
//! This crate re-exports the workspace members so the examples and the cross-crate
//! integration tests have a single dependency root:
//!
//! * [`simnet`] — the deterministic synchronous engine and the generic
//!   [`Simulation`](uba_simnet::sim) driver;
//! * [`core`] — the paper's id-only algorithms and their protocol factories;
//! * [`checker`] — executable property oracles for the paper's theorems;
//! * [`baselines`] — classic known-`(n, f)` comparison algorithms;
//! * [`bench`] — workloads, the E1–E14 experiment harness and Monte-Carlo sweeps.

#![forbid(unsafe_code)]

pub use uba_baselines as baselines;
pub use uba_bench as bench;
pub use uba_checker as checker;
pub use uba_core as core;
pub use uba_simnet as simnet;
