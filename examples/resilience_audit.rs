//! Monte-Carlo resilience audit of the consensus protocol.
//!
//! A single execution shows that one adversary, on one seed, failed to break
//! agreement; an *audit* repeats the question across seeds, adversary strategies and
//! failure counts, inside and outside the `n > 3f` bound, and reports rates. The
//! sweep is embarrassingly parallel, so it fans the trials out over worker threads
//! with the scoped-thread harness from `uba-bench` (each trial one `Simulation` builder run) — the aggregate numbers are
//! identical for any worker count.
//!
//! Run with `cargo run --release --example resilience_audit`.

use std::time::Instant;

use uba_bench::montecarlo::{ResilienceSweep, SweepConfig};
use uba_core::sim::AdversaryKind;

fn main() {
    let trials = 24u64;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    println!("auditing consensus: {trials} trials per cell, {workers} worker threads\n");

    let adversaries = [
        ("silent", AdversaryKind::Silent),
        ("announce-then-silent", AdversaryKind::AnnounceThenSilent),
        ("partial-announce", AdversaryKind::PartialAnnounce),
        ("split-vote", AdversaryKind::SplitVote),
    ];

    println!(
        "{:>3} {:>3} {:>6} {:<22} {:>11} {:>10} {:>22}",
        "n", "f", "n>3f?", "adversary", "agreement", "validity", "rounds (mean ± ci)"
    );
    println!("{}", "-".repeat(84));

    let started = Instant::now();
    for &f in &[1usize, 2, 3] {
        // One configuration inside the bound (n = 3f + 1) and one exactly at n = 3f.
        for &(correct, label) in &[(2 * f + 1, true), (2 * f, false)] {
            let n = correct + f;
            for (name, adversary) in adversaries {
                let sweep = ResilienceSweep {
                    correct,
                    byzantine: f,
                    adversary,
                    config: SweepConfig::new(trials, 0xA0D17 + f as u64).with_workers(workers),
                };
                let outcome = sweep.run();
                println!(
                    "{:>3} {:>3} {:>6} {:<22} {:>11} {:>10} {:>22}",
                    n,
                    f,
                    label,
                    name,
                    outcome.agreement.display(),
                    outcome.validity.display(),
                    outcome.rounds.display(1)
                );
            }
        }
        println!();
    }
    println!("audit finished in {:.2?}", started.elapsed());
    println!(
        "\nReading the table: inside the bound (n > 3f) every cell must show agreement and \
         validity rates of 1.000 — that is Theorem 3. At n = 3f nothing is promised; the rates \
         there are whatever the adversary managed on these seeds."
    );
}
