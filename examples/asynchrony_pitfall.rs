//! Why blockchains without known participation need synchrony (Section IX).
//!
//! The paper proves that once nodes do not know `n` and `f`, Byzantine consensus is
//! impossible — even with probabilistic termination, even with **zero** faulty nodes —
//! unless the system is synchronous. This example makes the argument tangible by
//! first running the same split-input population through the synchronous
//! `Simulation` driver (where Theorem 3 guarantees agreement), then re-running the
//! constructions of Lemmas 14 and 15 on the delay engine:
//!
//! * a synchronous control run, which always agrees;
//! * a semi-synchronous run where the (unknown) delay bound exceeds the time both
//!   sides need to decide — the two halves decide their own inputs;
//! * a fully asynchronous run where cross-partition messages never arrive.
//!
//! Run with `cargo run --example asynchrony_pitfall`.

use uba_core::impossibility::{disagreement_rate, run_partition_experiment, TimingModel};
use uba_core::sim::{ScenarioExt, Simulation};

fn describe(model: TimingModel) -> String {
    match model {
        TimingModel::Synchronous => "synchronous (control)".to_string(),
        TimingModel::SemiSynchronous { cross_delay } => {
            format!("semi-synchronous (unknown Δ = {cross_delay} ticks)")
        }
        TimingModel::Asynchronous => "asynchronous (unbounded delays)".to_string(),
        TimingModel::PartialSynchrony { gst, bound } => {
            format!("partially synchronous (GST = {gst}, δ = {bound})")
        }
    }
}

fn main() {
    let partitions = (4usize, 4usize);
    println!(
        "partition A: {} nodes, all with input 1\npartition B: {} nodes, all with input 0\n",
        partitions.0, partitions.1
    );

    // Under full synchrony the unified driver's consensus run always agrees — this
    // is the guarantee the timing models below take away.
    let inputs = [1u64, 1, 1, 1, 0, 0, 0, 0];
    let control = Simulation::scenario()
        .correct(8)
        .byzantine(0)
        .seed(7)
        .max_rounds(300)
        .consensus(&inputs)
        .run()
        .expect("synchronous consensus terminates");
    let section = control.consensus.as_ref().expect("consensus section");
    println!(
        "synchronous Simulation driver: agreement = {}, decided {} in {} rounds\n",
        section.agreement, section.decisions[0].value, control.rounds
    );

    let models = [
        TimingModel::Synchronous,
        TimingModel::SemiSynchronous { cross_delay: 400 },
        TimingModel::Asynchronous,
    ];

    println!(
        "{:<42} {:>10} {:>8} {:>12}",
        "timing model", "agreement", "ticks", "disagreement"
    );
    println!("{}", "-".repeat(78));
    for model in models {
        let outcome = run_partition_experiment(partitions.0, partitions.1, model, 7)
            .expect("experiment completes");
        let rate = disagreement_rate(partitions.0, partitions.1, model, 8, 100);
        println!(
            "{:<42} {:>10} {:>8} {:>11.0}%",
            describe(model),
            outcome.agreement,
            outcome.ticks,
            rate * 100.0
        );
        if !outcome.agreement {
            let ones = outcome.decisions.iter().filter(|(_, v)| *v == 1).count();
            let zeros = outcome.decisions.len() - ones;
            println!(
                "    -> {ones} nodes decided 1 and {zeros} decided 0: each side only ever heard \
                 itself and could not tell that the other side existed"
            );
        }
    }

    // Partial synchrony in the DLS sense is not enough either: a stabilisation
    // time later than the algorithm's initialisation rounds silences the whole
    // network long enough that the member estimates freeze empty, and the late
    // traffic cannot restore liveness — the run never terminates at all.
    let late_gst = TimingModel::PartialSynchrony { gst: 5, bound: 1 };
    match run_partition_experiment(partitions.0, partitions.1, late_gst, 7) {
        Err(error) => println!(
            "\n{}: no node ever decides ({error})\n    -> the silent prologue freezes every \
             member estimate; even a fully synchronous network after GST cannot revive the run",
            describe(late_gst)
        ),
        Ok(outcome) => println!(
            "\n{}: unexpectedly terminated ({outcome:?})",
            describe(late_gst)
        ),
    }

    println!(
        "\nConclusion (Lemmas 14 & 15): without knowing n and f, a node cannot know how many \
         messages to wait for, so it may decide before delayed messages arrive. Synchrony is \
         what the paper's algorithms — and any permissionless blockchain that wants guaranteed \
         agreement — must assume."
    );
}
