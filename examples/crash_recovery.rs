//! Crash mid-agreement, replay the write-ahead log, rejoin, decide.
//!
//! Real deployments do not get to assume a node that fails is gone for good:
//! machines reboot, processes are OOM-killed and restarted, disks survive. This
//! example runs the consensus protocol with seven correct and two Byzantine
//! nodes, crashes one correct node *in the middle of the agreement* (round 2),
//! and restarts it two rounds later from its durable state — the base
//! snapshot plus a write-ahead log of everything protocol-visible it did
//! (inputs consumed, message digests sent, rounds committed).
//!
//! On restart the recovery subsystem replays the log over the snapshot,
//! re-stepping every committed round and auditing the re-produced sends
//! against the durable records. The restarted node rejoins the run where it
//! left off and still decides the same value as everyone else; the
//! `uba-checker` recovery oracles (no cross-restart equivocation, state-prefix
//! consistency, no double-consumed input) certify the replay.
//!
//! Run with `cargo run --example crash_recovery`.

use uba_checker::attach_verdicts;
use uba_core::sim::{ScenarioExt, Simulation};
use uba_simnet::{ChurnEvent, ChurnSchedule, RestartPolicy};

const CRASH_ROUND: u64 = 2;
const RESTART_ROUND: u64 = 4;

fn main() {
    // Seven correct nodes voting 0/1, two Byzantine nodes under the protocol's
    // worst scripted adversary.
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let builder = Simulation::scenario().correct(7).byzantine(2).seed(7);

    // Crash the second correct node mid-agreement; bring it back two rounds
    // later with an intact log (`RestartPolicy::Clean`). The harness sees the
    // crash events in the schedule and enables write-ahead logging by itself.
    let victim = builder.spec().id_space.generate(9, 7)[1];
    let churn = ChurnSchedule::empty()
        .with(CRASH_ROUND, ChurnEvent::Crash(victim))
        .with(
            RESTART_ROUND,
            ChurnEvent::Restart {
                id: victim,
                policy: RestartPolicy::Clean,
            },
        );
    let mut harness = builder.max_rounds(100).churn(churn).consensus(&inputs);

    println!("correct nodes:   {:?}", harness.context().correct_ids);
    println!("byzantine nodes: {:?}", harness.context().byzantine_ids);
    println!("round {CRASH_ROUND}: node {victim} crashes (volatile state lost)");
    println!("round {RESTART_ROUND}: node {victim} restarts from snapshot + write-ahead log\n");

    let mut report = harness.run().expect("run completes");
    assert!(report.completed());
    attach_verdicts(&mut report);

    // The per-restart audit the recovery manager recorded.
    let recovery = report.recovery.as_ref().expect("a restart was performed");
    for restart in &recovery.restarts {
        println!("restart audit for node {}:", restart.node);
        println!("  crashed before round  {}", restart.crash_round);
        println!("  restarted at round    {}", restart.restart_round);
        println!("  policy                {:?}", restart.policy);
        println!("  committed rounds kept {}", restart.recovered_rounds);
        println!("  rounds re-stepped     {}", restart.replayed_rounds);
        println!("  send conflicts        {}", restart.send_conflicts);
        println!("  records dropped       {}", restart.dropped_records);
        println!("  inputs monotone       {}\n", restart.consumed_monotone);
    }

    // The restarted node caught up and decided the same value as everyone.
    let consensus = report.consensus.as_ref().expect("consensus section");
    println!("decisions:");
    for decision in &consensus.decisions {
        let marker = if decision.node == victim {
            "  <- crashed and recovered"
        } else {
            ""
        };
        println!(
            "  node {:<22} decided {} in round {:>2}{marker}",
            decision.node.to_string(),
            decision.value,
            decision.round
        );
    }
    assert!(
        consensus.decisions.iter().any(|d| d.node == victim),
        "the recovered node must decide"
    );
    assert!(consensus.agreement, "all decided values must be identical");
    assert!(consensus.undecided.is_empty());

    // Every oracle — the agreement theorems *and* the recovery properties.
    println!("\noracle verdicts:");
    for verdict in &report.verdicts {
        println!(
            "  {:<20} {} ({} checks)",
            verdict.oracle,
            if verdict.passed { "ok" } else { "VIOLATED" },
            verdict.checks
        );
        assert!(
            verdict.passed,
            "{}: {:?}",
            verdict.oracle, verdict.violations
        );
    }
    println!("\nthe crash was survivable: same decision, no equivocation, no replayed input.");
}
