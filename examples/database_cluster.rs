//! Database cluster reconfiguration: the paper's introductory motivation.
//!
//! A replicated database cluster scales up and down with load, so no replica can be
//! initialised with "the" cluster size `n` or a failure bound `f`. The replicas still
//! need a single, totally ordered history of configuration operations (add shard,
//! move shard, change replication factor), or they drift apart. This example runs the
//! dynamic total-ordering protocol (Algorithm 6) as that configuration log:
//!
//! * three replicas found the cluster;
//! * replicas are added while the load grows and retired while it shrinks;
//! * two Byzantine replicas flap their membership and spam fabricated operations;
//! * at the end, the surviving replicas' configuration logs are checked for the
//!   chain-prefix property with the `uba-checker` oracle.
//!
//! Run with `cargo run -p uba-bench --example database_cluster`.

use uba_checker::chain::{check_chain_prefix, ChainObservation};
use uba_core::attackers::MembershipFlapper;
use uba_core::total_order::TotalOrderNode;
use uba_simnet::{IdSpace, NodeId, Protocol, SyncEngine};

/// A configuration operation: (operation code, parameter).
type ConfigOp = (u64, u64);

const OP_ADD_SHARD: u64 = 1;
const OP_MOVE_SHARD: u64 = 2;
const OP_SET_REPLICATION: u64 = 3;

fn op_name(op: u64) -> &'static str {
    match op {
        OP_ADD_SHARD => "add-shard",
        OP_MOVE_SHARD => "move-shard",
        OP_SET_REPLICATION => "set-replication",
        _ => "unknown",
    }
}

fn main() {
    let founder_ids = IdSpace::default().generate(3, 99);
    let byzantine_ids = vec![NodeId::new(9_000_001), NodeId::new(9_000_002)];
    println!("founding replicas: {founder_ids:?}");
    println!("byzantine replicas (membership flapping + op spam): {byzantine_ids:?}\n");

    let nodes: Vec<TotalOrderNode<ConfigOp>> =
        founder_ids.iter().map(|&id| TotalOrderNode::founding(id)).collect();
    let adversary = MembershipFlapper::new((OP_SET_REPLICATION, 666));
    let mut engine = SyncEngine::new(nodes, adversary, byzantine_ids);

    // Scale-up replicas join at these rounds, scale-down retires one founder later.
    let scale_up: Vec<(u64, NodeId)> =
        vec![(15, NodeId::new(5_000_010)), (30, NodeId::new(5_000_020)), (45, NodeId::new(5_000_030))];
    let retire_round = 60u64;
    let retiree = founder_ids[2];
    let mut joined_rounds: Vec<(NodeId, u64)> = founder_ids.iter().map(|&id| (id, 0)).collect();

    let total_rounds = 110u64;
    for round in 0..total_rounds {
        for &(at, id) in &scale_up {
            if round == at {
                println!("round {round:>3}: scaling up — replica {id} joins");
                engine.add_node(TotalOrderNode::joining(id)).unwrap();
                joined_rounds.push((id, round));
            }
        }
        if round == retire_round {
            println!("round {round:>3}: scaling down — replica {retiree} retires");
            if let Some(node) = engine.nodes_mut().iter_mut().find(|n| Protocol::id(*n) == retiree) {
                node.announce_leave();
            }
        }
        // Every third round the operator submits a configuration operation through
        // one of the founders.
        if round % 3 == 0 {
            let submitter = founder_ids[(round as usize / 3) % 2];
            let op = match (round / 3) % 3 {
                0 => (OP_ADD_SHARD, round),
                1 => (OP_MOVE_SHARD, round),
                _ => (OP_SET_REPLICATION, 3),
            };
            if let Some(node) =
                engine.nodes_mut().iter_mut().find(|n| Protocol::id(*n) == submitter)
            {
                node.submit_event(op);
            }
        }
        engine.run_rounds(1).unwrap();
    }

    println!("\nreplica        | joined | config-log length | finalized up to round");
    println!("---------------+--------+-------------------+----------------------");
    for node in engine.nodes() {
        let joined = joined_rounds
            .iter()
            .find(|(id, _)| *id == Protocol::id(node))
            .map(|(_, round)| *round)
            .unwrap_or(0);
        println!(
            "{:<14} | {:>6} | {:>17} | {:>21}",
            Protocol::id(node).to_string(),
            joined,
            node.chain().len(),
            node.finalized_upto()
        );
    }

    // Verify the chain-prefix property across all surviving replicas. A joiner's log
    // necessarily starts a couple of rounds after it was added (its join handshake has
    // to complete before it participates in an instance), so the comparable part of
    // its log starts at its first finalised round.
    let observations: Vec<ChainObservation<ConfigOp>> = engine
        .nodes()
        .iter()
        .map(|node| ChainObservation {
            node: Protocol::id(node),
            chain: node.chain().to_vec(),
            joined_round: node.chain().first().map(|entry| entry.round).unwrap_or(0),
        })
        .collect();
    let report = check_chain_prefix(&observations);
    report.assert_passed("database cluster configuration log");
    println!("\nchain-prefix verified across {} replicas ({})", observations.len(), report);

    // Operations fabricated by the Byzantine replicas may only appear if every
    // correct replica agreed to order them (agreement still holds); count them.
    let fabricated: usize = observations[0]
        .chain
        .iter()
        .filter(|entry| entry.event == (OP_SET_REPLICATION, 666))
        .count();
    println!(
        "Byzantine-fabricated operations that made it into the agreed log: {fabricated} \
         (whatever the number, it is the same for every correct replica)"
    );

    let longest = observations.iter().max_by_key(|o| o.chain.len()).unwrap();
    println!("\nfirst eight agreed configuration operations:");
    for entry in longest.chain.iter().take(8) {
        println!(
            "  round {:>3}  proposed by {:<12} {} ({})",
            entry.round,
            entry.witness.to_string(),
            op_name(entry.event.0),
            entry.event.1
        );
    }
}
