//! Database cluster reconfiguration: the paper's introductory motivation.
//!
//! A replicated database cluster scales up and down with load, so no replica can be
//! initialised with "the" cluster size `n` or a failure bound `f`. The replicas still
//! need a single, totally ordered history of configuration operations (add shard,
//! move shard, change replication factor), or they drift apart. This example runs the
//! dynamic total-ordering protocol (Algorithm 6) as that configuration log:
//!
//! * three replicas found the cluster;
//! * replicas are added while the load grows (via the scenario's churn schedule) and
//!   retired while it shrinks (via the total-order input plan);
//! * two Byzantine replicas flap their membership and spam fabricated operations
//!   (a custom attack passed through `build_with_adversary`);
//! * at the end, the surviving replicas' configuration logs are checked for the
//!   chain-prefix property with the `uba-checker` oracle.
//!
//! Run with `cargo run --example database_cluster`.

use uba_checker::chain::{check_chain_prefix, ChainObservation};
use uba_core::attackers::MembershipFlapper;
use uba_core::sim::{Simulation, TotalOrderFactory, TotalOrderPlan};
use uba_simnet::{ChurnEvent, ChurnSchedule, NodeId, Protocol};

/// A configuration operation: (operation code, parameter).
type ConfigOp = (u64, u64);

const OP_ADD_SHARD: u64 = 1;
const OP_MOVE_SHARD: u64 = 2;
const OP_SET_REPLICATION: u64 = 3;

fn op_name(op: u64) -> &'static str {
    match op {
        OP_ADD_SHARD => "add-shard",
        OP_MOVE_SHARD => "move-shard",
        OP_SET_REPLICATION => "set-replication",
        _ => "unknown",
    }
}

fn main() {
    let total_rounds = 110u64;

    // Every third round the operator submits a configuration operation through one
    // of the founders; one founder retires at round 60.
    let mut plan: TotalOrderPlan<ConfigOp> = TotalOrderPlan::rounds(total_rounds);
    for round in (0..total_rounds).step_by(3) {
        let submitter = (round as usize / 3) % 2;
        let op = match (round / 3) % 3 {
            0 => (OP_ADD_SHARD, round),
            1 => (OP_MOVE_SHARD, round),
            _ => (OP_SET_REPLICATION, 3),
        };
        plan = plan.event(round + 1, submitter, op);
    }
    let plan = plan.leave(61, 2);

    // Scale-up replicas join through the engine's churn schedule.
    let scale_up: Vec<(u64, NodeId)> = vec![
        (16, NodeId::new(5_000_010)),
        (31, NodeId::new(5_000_020)),
        (46, NodeId::new(5_000_030)),
    ];
    let mut churn = ChurnSchedule::empty();
    for &(round, id) in &scale_up {
        churn.push(round, ChurnEvent::JoinCorrect(id));
    }

    let mut harness = Simulation::scenario()
        .correct(3)
        .byzantine(2)
        .seed(99)
        .max_rounds(total_rounds)
        .churn(churn)
        .build_with_adversary(
            TotalOrderFactory::new(plan),
            "membership-flapper",
            MembershipFlapper::new((OP_SET_REPLICATION, 666)),
        );
    println!("founding replicas: {:?}", harness.context().correct_ids);
    println!(
        "byzantine replicas (membership flapping + op spam): {:?}\n",
        harness.context().byzantine_ids
    );
    for &(round, id) in &scale_up {
        println!("round {:>3}: scaling up — replica {id} joins", round - 1);
    }
    println!(
        "round  60: scaling down — replica {} retires",
        harness.context().correct_ids[2]
    );

    let report = harness.run().expect("run completes");
    assert!(report.completed());

    println!("\nreplica        | config-log length | finalized up to round");
    println!("---------------+-------------------+----------------------");
    for node in harness.nodes() {
        println!(
            "{:<14} | {:>17} | {:>21}",
            Protocol::id(node).to_string(),
            node.chain().len(),
            node.finalized_upto()
        );
    }

    // Verify the chain-prefix property across all surviving replicas. A joiner's log
    // necessarily starts a couple of rounds after it was added (its join handshake has
    // to complete before it participates in an instance), so the comparable part of
    // its log starts at its first finalised round.
    let observations: Vec<ChainObservation<ConfigOp>> = harness
        .nodes()
        .iter()
        .map(|node| ChainObservation {
            node: Protocol::id(node),
            chain: node.chain().to_vec(),
            joined_round: node.chain().first().map(|entry| entry.round).unwrap_or(0),
        })
        .collect();
    let checked = check_chain_prefix(&observations);
    checked.assert_passed("database cluster configuration log");
    println!(
        "\nchain-prefix verified across {} replicas ({checked})",
        observations.len()
    );

    // Operations fabricated by the Byzantine replicas may only appear if every
    // correct replica agreed to order them (agreement still holds); count them.
    let fabricated: usize = observations[0]
        .chain
        .iter()
        .filter(|entry| entry.event == (OP_SET_REPLICATION, 666))
        .count();
    println!(
        "Byzantine-fabricated operations that made it into the agreed log: {fabricated} \
         (whatever the number, it is the same for every correct replica)"
    );

    let longest = observations.iter().max_by_key(|o| o.chain.len()).unwrap();
    println!("\nfirst eight agreed configuration operations:");
    for entry in longest.chain.iter().take(8) {
        println!(
            "  round {:>3}  proposed by {:<12} {} ({})",
            entry.round,
            entry.witness.to_string(),
            op_name(entry.event.0),
            entry.event.1
        );
    }
}
