//! Leader election with unknown membership: the rotor-coordinator in action.
//!
//! A database cluster elects a sequence of coordinators so that at least one of them
//! is guaranteed to be correct — without any node knowing the cluster size or the
//! failure bound, and with Byzantine members actively trying to get fabricated node
//! identifiers into the candidate sets. Every correct node terminates within `O(n)`
//! rounds and witnesses a round in which everyone accepted the opinion of the same,
//! correct coordinator (a *good round*).
//!
//! The custom candidate-poisoning attack goes through the `Simulation` builder's
//! `build_with_adversary` escape hatch — the scenario description stays the same.
//!
//! Run with `cargo run --example leader_election`.

use uba_core::adversaries::CandidatePoisoner;
use uba_core::sim::{RotorFactory, Simulation};
use uba_simnet::NodeId;

fn main() {
    // The adversary vouches for identifiers that do not exist, trying to get ghost
    // nodes elected.
    let ghosts = vec![NodeId::new(1), NodeId::new(2)];
    let mut harness = Simulation::scenario()
        .correct(7)
        .byzantine(3)
        .seed(23)
        .max_rounds(200)
        .build_with_adversary(
            RotorFactory,
            "candidate-poisoner",
            CandidatePoisoner::new(ghosts.clone()),
        );
    println!("cluster members : {:?}", harness.context().correct_ids);
    println!("byzantine nodes : {:?}\n", harness.context().byzantine_ids);

    let report = harness.run().expect("rotor terminates in O(n) rounds");
    assert!(report.completed());

    println!("terminated after {} rounds\n", report.rounds);
    println!(
        "loop round | coordinator selected by node {}",
        harness.context().correct_ids[0]
    );
    println!("-----------+----------------------------------");
    for record in harness.nodes()[0].state().history() {
        println!(
            "{:>10} | {} (accepted opinion: {:?})",
            record.loop_round, record.coordinator, record.accepted_opinion
        );
    }

    // The report's rotor section certifies the good round (Theorem 2).
    let section = report.rotor.as_ref().expect("rotor section");
    assert!(
        section.good_round,
        "Theorem 2 guarantees a good round before termination"
    );
    println!(
        "\ngood round confirmed: every node trusted the same correct coordinator at least once \
         ({} coordinators selected)",
        section.selected
    );

    // No fabricated identifier ever made it into a candidate set.
    for node in harness.nodes() {
        for ghost in &ghosts {
            assert!(!node.state().candidates().contains(ghost));
        }
    }
    println!("fabricated candidate identifiers were kept out of every candidate set");
}
