//! Leader election with unknown membership: the rotor-coordinator in action.
//!
//! A database cluster elects a sequence of coordinators so that at least one of them
//! is guaranteed to be correct — without any node knowing the cluster size or the
//! failure bound, and with Byzantine members actively trying to get fabricated node
//! identifiers into the candidate sets. Every correct node terminates within `O(n)`
//! rounds and witnesses a round in which everyone accepted the opinion of the same,
//! correct coordinator (a *good round*).
//!
//! Run with `cargo run -p uba-core --example leader_election`.

use std::collections::BTreeSet;

use uba_core::adversaries::CandidatePoisoner;
use uba_core::RotorCoordinator;
use uba_simnet::{IdSpace, NodeId, SyncEngine};

fn main() {
    let ids = IdSpace::default().generate(10, 23);
    let (correct_ids, byzantine_ids) = ids.split_at(7);
    println!("cluster members : {correct_ids:?}");
    println!("byzantine nodes : {byzantine_ids:?}\n");

    // Each node's "opinion" is the configuration epoch it would announce as leader.
    let nodes: Vec<RotorCoordinator<u64>> =
        correct_ids.iter().map(|&id| RotorCoordinator::new(id, id.raw() * 1000)).collect();

    // The adversary vouches for identifiers that do not exist, trying to get ghost
    // nodes elected.
    let adversary = CandidatePoisoner::new(vec![NodeId::new(1), NodeId::new(2)]);

    let mut engine = SyncEngine::new(nodes, adversary, byzantine_ids.to_vec());
    engine.run_until_all_terminated(200).expect("rotor terminates in O(n) rounds");

    println!("terminated after {} rounds\n", engine.round());
    println!("loop round | coordinator selected by node {}", engine.correct_ids()[0]);
    println!("-----------+----------------------------------");
    let reference = engine.nodes()[0].state().history();
    for record in reference {
        println!(
            "{:>10} | {} (accepted opinion: {:?})",
            record.loop_round,
            record.coordinator,
            record.accepted_opinion
        );
    }

    // Find the good round: every correct node selected the same correct coordinator.
    let correct: BTreeSet<NodeId> = engine.correct_ids().into_iter().collect();
    let histories: Vec<_> = engine.nodes().iter().map(|n| n.state().history()).collect();
    let rounds = histories.iter().map(|h| h.len()).min().unwrap();
    let good_round = (0..rounds).find(|&r| {
        let selections: BTreeSet<NodeId> = histories.iter().map(|h| h[r].coordinator).collect();
        selections.len() == 1 && correct.contains(selections.iter().next().unwrap())
    });
    match good_round {
        Some(r) => println!(
            "\ngood round found at loop round {r}: every node trusted the same correct coordinator"
        ),
        None => unreachable!("Theorem 2 guarantees a good round before termination"),
    }

    // No fabricated identifier ever made it into a candidate set.
    for node in engine.nodes() {
        assert!(!node.state().candidates().contains(&NodeId::new(1)));
        assert!(!node.state().candidates().contains(&NodeId::new(2)));
    }
    println!("fabricated candidate identifiers were kept out of every candidate set");
}
