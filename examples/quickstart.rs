//! Quickstart: Byzantine consensus without knowing how many participants there are.
//!
//! Seven nodes with sparse, non-consecutive identifiers hold split binary opinions.
//! Two additional Byzantine nodes announce themselves and then try to split the vote.
//! No correct node is ever told `n = 9` or `f = 2` — yet they all decide the same
//! value, and that value was the input of some correct node.
//!
//! Run with `cargo run -p uba-core --example quickstart`.

use uba_core::adversaries::SplitVote;
use uba_core::Consensus;
use uba_simnet::{IdSpace, Protocol, SyncEngine};

fn main() {
    // Sparse, non-consecutive identifiers: nobody can infer n from them.
    let ids = IdSpace::default().generate(9, 42);
    let (correct_ids, byzantine_ids) = ids.split_at(7);

    println!("correct nodes  : {correct_ids:?}");
    println!("byzantine nodes: {byzantine_ids:?}");

    // Correct nodes with split opinions. Note that a node is constructed from its id
    // and its input only — no n, no f, no membership list.
    let nodes: Vec<Consensus<u64>> = correct_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| Consensus::new(id, (i % 2) as u64))
        .collect();

    // The adversary pushes opposite values to different halves of the network.
    let adversary = SplitVote::new(0u64, 1u64);

    let mut engine = SyncEngine::new(nodes, adversary, byzantine_ids.to_vec());
    engine.run_until_all_terminated(300).expect("consensus terminates");

    println!("\nround | node        | decided | phase");
    println!("------+-------------+---------+------");
    for node in engine.nodes() {
        let decision = node.decision().expect("every correct node decided");
        println!(
            "{:>5} | {:<11} | {:>7} | {:>5}",
            decision.round,
            node.id().to_string(),
            decision.value,
            decision.phase
        );
    }

    let decisions: Vec<u64> =
        engine.outputs().into_iter().map(|(_, d)| d.unwrap().value).collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
    println!(
        "\nall {} correct nodes agreed on {} after {} rounds and {} messages",
        decisions.len(),
        decisions[0],
        engine.round(),
        engine.metrics().correct_messages
    );
}
