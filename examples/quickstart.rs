//! Quickstart: Byzantine consensus without knowing how many participants there are.
//!
//! Seven nodes with sparse, non-consecutive identifiers hold split binary opinions.
//! Two additional Byzantine nodes announce themselves and then try to split the vote.
//! No correct node is ever told `n = 9` or `f = 2` — yet they all decide the same
//! value, and that value was the input of some correct node.
//!
//! The whole experiment is one `Simulation` builder chain: describe the system,
//! pick the adversary, point it at a protocol, read the report.
//!
//! Run with `cargo run --example quickstart`.

use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};

fn main() {
    // Sparse, non-consecutive identifiers: nobody can infer n from them. Correct
    // nodes are constructed from id and input only — no n, no f, no membership list.
    let inputs: Vec<u64> = (0..7).map(|i| (i % 2) as u64).collect();
    let mut harness = Simulation::scenario()
        .correct(7)
        .byzantine(2)
        .seed(42)
        .max_rounds(300)
        // The adversary pushes opposite values to different halves of the network.
        .adversary(AdversaryKind::SplitVote)
        .consensus(&inputs);

    println!("correct nodes  : {:?}", harness.context().correct_ids);
    println!("byzantine nodes: {:?}", harness.context().byzantine_ids);

    let report = harness.run().expect("consensus terminates");
    let section = report.consensus.as_ref().expect("consensus section");

    println!("\nround | node        | decided | phase");
    println!("------+-------------+---------+------");
    for decision in &section.decisions {
        println!(
            "{:>5} | {:<11} | {:>7} | {:>5}",
            decision.round,
            decision.node.to_string(),
            decision.value,
            decision.phase
        );
    }

    assert!(section.agreement, "agreement");
    assert!(section.validity, "validity");
    println!(
        "\nall {} correct nodes agreed on {} after {} rounds and {} messages",
        section.decisions.len(),
        section.decisions[0].value,
        report.rounds,
        report.messages.correct
    );
}
