//! Sensor fusion: approximate agreement on a physical reading with faulty sensors.
//!
//! A cluster of temperature sensors (the motivating "wireless sensor network with a
//! changing number of faulty nodes" from the paper's introduction) must converge on a
//! common estimate. Some sensors are Byzantine and report wildly wrong values — and
//! report *different* wrong values to different peers. Nobody knows how many sensors
//! exist or how many are faulty. Iterating Algorithm 4 halves the disagreement every
//! round while never leaving the range of honest readings.
//!
//! Run with `cargo run -p uba-core --example sensor_fusion`.

use uba_core::{IteratedApproxAgreement, Real};
use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

fn main() {
    // 13 honest sensors reading between 18.0 and 23.0 degrees, 4 Byzantine ones.
    let ids = IdSpace::default().generate(17, 11);
    let (honest_ids, byzantine_ids) = ids.split_at(13);
    let readings: Vec<f64> =
        (0..13).map(|i| 18.0 + (i as f64) * 5.0 / 12.0).collect();

    println!("honest readings: {readings:?}");
    println!("byzantine sensors: {byzantine_ids:?}\n");

    let iterations = 8;
    let nodes: Vec<IteratedApproxAgreement> = honest_ids
        .iter()
        .zip(&readings)
        .map(|(&id, &reading)| IteratedApproxAgreement::new(id, Real::from_f64(reading), iterations))
        .collect();

    // The faulty sensors report −40 °C to half of the peers and +85 °C to the other
    // half, every single round.
    let byz: Vec<_> = byzantine_ids.to_vec();
    let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Real>| {
        let mut out = Vec::new();
        for (b, &from) in byz.iter().enumerate() {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                let lie = if (i + b) % 2 == 0 { -40.0 } else { 85.0 };
                out.push(Directed::new(from, to, Real::from_f64(lie)));
            }
        }
        out
    });

    let mut engine = SyncEngine::new(nodes, adversary, byzantine_ids.to_vec());
    engine.run_until_all_terminated(iterations + 5).expect("fusion completes");

    println!("iteration | min estimate | max estimate | spread");
    println!("----------+--------------+--------------+-------");
    for i in 0..iterations as usize {
        let values: Vec<f64> =
            engine.nodes().iter().map(|n| n.history()[i].to_f64()).collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("{:>9} | {:>12.4} | {:>12.4} | {:>6.4}", i + 1, lo, hi, hi - lo);
        assert!(lo >= 18.0 - 1e-6 && hi <= 23.0 + 1e-6, "estimates stay in the honest range");
    }

    let finals: Vec<f64> = engine.outputs().into_iter().map(|(_, o)| o.unwrap().to_f64()).collect();
    let spread = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - finals.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nafter {iterations} iterations the honest sensors agree to within {spread:.4} °C");
}
