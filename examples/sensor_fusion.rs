//! Sensor fusion: approximate agreement on a physical reading with faulty sensors.
//!
//! A cluster of temperature sensors (the motivating "wireless sensor network with a
//! changing number of faulty nodes" from the paper's introduction) must converge on a
//! common estimate. Some sensors are Byzantine and report wildly wrong values — and
//! report *different* wrong values to different peers. Nobody knows how many sensors
//! exist or how many are faulty. Iterating Algorithm 4 halves the disagreement every
//! round while never leaving the range of honest readings.
//!
//! The domain-specific lie (−40 °C / +85 °C) is injected through the builder's
//! `build_with_adversary` escape hatch.
//!
//! Run with `cargo run --example sensor_fusion`.

use uba_core::sim::{IteratedApproxFactory, Simulation};
use uba_core::Real;
use uba_simnet::{AdversaryView, Directed, FnAdversary};

fn main() {
    // 13 honest sensors reading between 18.0 and 23.0 degrees, 4 Byzantine ones.
    let readings: Vec<f64> = (0..13).map(|i| 18.0 + (i as f64) * 5.0 / 12.0).collect();
    let iterations = 8u64;

    // The faulty sensors report −40 °C to half of the peers and +85 °C to the other
    // half, every single round.
    let liar = FnAdversary::new(|view: &AdversaryView<'_, Real>| {
        let mut out = Vec::new();
        for (b, &from) in view.byzantine_ids.iter().enumerate() {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                let lie = if (i + b) % 2 == 0 { -40.0 } else { 85.0 };
                out.push(Directed::new(from, to, Real::from_f64(lie)));
            }
        }
        out
    });

    let mut harness = Simulation::scenario()
        .correct(13)
        .byzantine(4)
        .seed(11)
        .max_rounds(iterations + 5)
        .build_with_adversary(
            IteratedApproxFactory::new(readings.clone(), iterations),
            "freeze-or-boil-liars",
            liar,
        );

    println!("honest readings: {readings:?}");
    println!("byzantine sensors: {:?}\n", harness.context().byzantine_ids);

    let report = harness.run().expect("fusion completes");
    assert!(report.completed());

    println!("iteration | min estimate | max estimate | spread");
    println!("----------+--------------+--------------+-------");
    for i in 0..iterations as usize {
        let values: Vec<f64> = harness
            .nodes()
            .iter()
            .map(|n| n.history()[i].to_f64())
            .collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>9} | {:>12.4} | {:>12.4} | {:>6.4}",
            i + 1,
            lo,
            hi,
            hi - lo
        );
        assert!(
            lo >= 18.0 - 1e-6 && hi <= 23.0 + 1e-6,
            "estimates stay in the honest range"
        );
    }

    let spreads = &report
        .spreads
        .as_ref()
        .expect("spread section")
        .per_iteration;
    println!(
        "\nafter {iterations} iterations the honest sensors agree to within {:.4} °C",
        spreads.last().unwrap()
    );
}
