//! Permissionless-style ledger: totally ordering events while nodes come and go.
//!
//! This is the scenario that motivates the paper's dynamic-network section: a small
//! "ledger" where participants submit transactions every round, a new node joins
//! mid-run, and another one leaves — all without any node ever knowing how many
//! participants exist. The finalised chains of all participants are prefixes of one
//! another (chain-prefix) and keep growing (chain-growth).
//!
//! Joins ride the scenario's churn schedule (applied by the engine itself),
//! transaction submissions and the leave announcement ride the total-order input
//! plan — the whole run is one `Simulation` builder chain.
//!
//! Run with `cargo run --example permissionless_ledger`.

use uba_core::sim::{ScenarioExt, Simulation, TotalOrderPlan};
use uba_simnet::{ChurnEvent, ChurnSchedule, NodeId, Protocol};

fn main() {
    let joiner = NodeId::new(1_000_003);
    let total_rounds = 80u64;

    // Every round, one participant submits a transaction (account, nonce); the
    // fifth founder announces its departure at round 40.
    let mut plan = TotalOrderPlan::rounds(total_rounds);
    for round in 0..total_rounds {
        let submitter = (round as usize) % 4;
        plan = plan.event(round + 1, submitter, (submitter as u64) << 32 | round);
    }
    let plan = plan.leave(41, 4);

    // A new participant shows up at round 20 without any ceremony beyond
    // broadcasting `present`.
    let churn = ChurnSchedule::empty().with(21, ChurnEvent::JoinCorrect(joiner));

    let mut harness = Simulation::scenario()
        .correct(5)
        .byzantine(0)
        .seed(7)
        .max_rounds(total_rounds)
        .churn(churn)
        .total_order(plan);
    println!("founders: {:?}", harness.context().correct_ids);
    println!("round  21: {joiner} joins the network");
    println!(
        "round  41: {} announces that it leaves",
        harness.context().correct_ids[4]
    );

    let report = harness.run().expect("run completes");

    // Inspect the finalised chains.
    println!("\nnode         | chain length | finalized up to round");
    println!("-------------+--------------+----------------------");
    for node in harness.nodes() {
        println!(
            "{:<12} | {:>12} | {:>21}",
            node.id().to_string(),
            node.chain().len(),
            node.finalized_upto()
        );
    }

    // Chain-prefix: every pair of chains agrees on the rounds they both cover (the
    // joiner's log necessarily starts after it joined) — certified by the report.
    let section = report.chain.as_ref().expect("chain section");
    assert!(section.prefix_ok, "chain-prefix violated");
    let longest = section.lengths.iter().map(|&(_, len)| len).max().unwrap();
    println!(
        "\nchain-prefix holds across {} nodes; longest finalised chain: {longest} events",
        section.lengths.len()
    );

    println!("\nfirst ten ordered events:");
    let best = harness
        .nodes()
        .iter()
        .max_by_key(|n| n.chain().len())
        .expect("at least one node");
    for event in best.chain().iter().take(10) {
        println!(
            "  round {:>3}  witness {:<11} tx = (account {}, nonce {})",
            event.round,
            event.witness.to_string(),
            event.event >> 32,
            event.event & 0xFFFF_FFFF
        );
    }
}
