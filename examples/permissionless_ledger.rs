//! Permissionless-style ledger: totally ordering events while nodes come and go.
//!
//! This is the scenario that motivates the paper's dynamic-network section: a small
//! "ledger" where participants submit transactions every round, a new node joins
//! mid-run, and another one leaves — all without any node ever knowing how many
//! participants exist. The finalised chains of all participants are prefixes of one
//! another (chain-prefix) and keep growing (chain-growth).
//!
//! Run with `cargo run -p uba-core --example permissionless_ledger`.

use uba_core::total_order::chains_agree;
use uba_core::{OrderedEvent, TotalOrderNode};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, NodeId, Protocol, SyncEngine};

/// A toy transaction: (account, amount).
type Tx = (u64, u64);

fn main() {
    let founder_ids = IdSpace::default().generate(5, 7);
    println!("founders: {founder_ids:?}");

    let nodes: Vec<TotalOrderNode<Tx>> =
        founder_ids.iter().map(|&id| TotalOrderNode::founding(id)).collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);

    let joiner = NodeId::new(1_000_003);
    let leaver = founder_ids[4];
    let total_rounds = 80u64;

    for round in 0..total_rounds {
        // A new participant shows up at round 20 without any ceremony beyond
        // broadcasting `present`.
        if round == 20 {
            println!("round {round:>3}: {joiner} joins the network");
            engine.add_node(TotalOrderNode::joining(joiner)).unwrap();
        }
        // One founder announces its departure at round 40.
        if round == 40 {
            println!("round {round:>3}: {leaver} announces that it leaves");
            if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == leaver) {
                node.announce_leave();
            }
        }
        // Every round, one participant submits a transaction.
        let submitter = founder_ids[(round as usize) % 4];
        if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == submitter) {
            node.submit_event((submitter.raw() % 100, round));
        }
        engine.run_rounds(1).unwrap();
    }

    // Inspect the finalised chains.
    let chains: Vec<(NodeId, Vec<OrderedEvent<Tx>>)> = engine
        .nodes()
        .iter()
        .map(|n| (n.id(), n.chain().to_vec()))
        .collect();

    println!("\nnode         | chain length | finalized up to round");
    println!("-------------+--------------+----------------------");
    for node in engine.nodes() {
        println!(
            "{:<12} | {:>12} | {:>21}",
            node.id().to_string(),
            node.chain().len(),
            node.finalized_upto()
        );
    }

    // Chain-prefix: every pair of chains agrees on the rounds they both cover (the
    // joiner's log necessarily starts after it joined).
    let logs: Vec<Vec<OrderedEvent<Tx>>> = chains.iter().map(|(_, c)| c.clone()).collect();
    assert!(chains_agree(&logs), "chain-prefix violated");
    let longest = chains.iter().map(|(_, c)| c.len()).max().unwrap();
    println!("\nchain-prefix holds across {} nodes; longest finalised chain: {longest} events", chains.len());

    println!("\nfirst ten ordered events:");
    for event in chains.iter().max_by_key(|(_, c)| c.len()).unwrap().1.iter().take(10) {
        println!(
            "  round {:>3}  witness {:<11} tx = (account {}, nonce {})",
            event.round,
            event.witness.to_string(),
            event.event.0,
            event.event.1
        );
    }
}
